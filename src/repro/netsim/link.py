"""Ports and links: serialization, propagation, and egress queueing.

A :class:`Link` joins two ports with a pair of independent
:class:`LinkDirection` objects.  Each direction owns its egress queue
(:mod:`repro.netsim.queues`) and models store-and-forward transmission:
serialization at the configured bandwidth followed by propagation latency.

External links (:class:`ExternalLink`) carry packets out of this network
partition — to another partition or to a detailed NIC simulator — via a
SplitSim channel.  They model serialization locally and leave propagation to
the channel latency, so a partitioned topology has exactly the same timing
as the unpartitioned one.

**Batched fast path** (:meth:`LinkDirection.enable_batching`): the
per-packet path costs three kernel events per switch-bound crossing
(serialization done, delivery, switch process).  The batched path instead
computes each packet's serialization slot *at enqueue time* — the line
keeps a busy horizon that every accepted packet extends — and schedules
only the delivery event, fused with the switch lookup when the receiver is
a plain store-and-forward switch (the way FireSim's switch turns a run of
back-to-back flits into single units of work).  Idleness is detected by
comparing ``now`` against the busy horizon, so there is no per-packet or
per-run completion event at all.  Packets stay accounted in the egress
queue until their serialization start has passed
(:meth:`LinkDirection._settle`), so concurrent enqueues observe the same
instantaneous occupancy — ECN marks and capacity drops are preserved
bit-for-bit against the per-packet path.  Off by default; enabled per
direction via :class:`~repro.netsim.fidelity.FidelityConfig`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, TYPE_CHECKING

from ..kernel.simtime import SEC
from ..obs.flows import _ACTIVE as _FLOWS
from ..parallel.costmodel import BATCH_PKT_CYCLES
from .packet import Packet
from .queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover
    from .network import NetworkSim
    from .node import Node


class Port:
    """An attachment point on a node; sends via its bound egress direction."""

    def __init__(self, node: "Node", index: int) -> None:
        self.node = node
        self.index = index
        self.egress: Optional[LinkDirection] = None
        self.peer: Optional[Port] = None  # None for external links

    def send(self, pkt: Packet) -> None:
        """Transmit out this port via its bound egress direction."""
        if self.egress is None:
            raise RuntimeError(f"{self.node.name} port {self.index}: not linked")
        self.egress.transmit(pkt)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Port {self.node.name}[{self.index}]>"


class LinkDirection:
    """One direction of a link: egress queue -> serialization -> propagation."""

    def __init__(self, net: "NetworkSim", bandwidth_bps: float, latency_ps: int,
                 queue: DropTailQueue,
                 deliver: Callable[[Packet], None],
                 label: str = "") -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.net = net
        self.bandwidth_bps = bandwidth_bps
        self.latency_ps = latency_ps
        self.queue = queue
        self.deliver = deliver
        self.busy = False
        # hot-path cache: integer bandwidth for the inline ceil-division
        # (identical math to simtime.bits_time)
        self._bw_int = int(bandwidth_bps)
        #: Optional hook invoked when a packet starts serialization
        #: (used by PTP transparent clocks to record residence time).
        self.on_tx_start: Optional[Callable[[Packet, int], None]] = None
        self.tx_packets = 0
        self.tx_bytes = 0
        #: direction label for observability tracks ("src->dst")
        self.label = label
        #: ``None`` (tracing off; one pointer test per packet) or a
        #: ``(Tracer, tid)`` pair — emits busy-period spans and sampled
        #: queue-depth counter tracks.
        self.obs: Optional[tuple] = None
        self._busy_since = 0
        self._busy_pkts = 0
        #: Batched fast path (off by default; see module docstring).
        self.batched = False
        #: Pending ``(ser_start_ps, pkt)`` entries: packets already assigned
        #: a serialization slot (delivery scheduled) but still accounted in
        #: the egress queue until their serialization start passes.
        self._run: deque = deque()
        #: picosecond at which the line goes idle (end of the last assigned
        #: packet's serialization); the batched path's busy test.
        self._run_end = 0
        #: ``(switch, rx_port, proc_delay_ps)`` when the receive side is a
        #: plain store-and-forward switch whose rx+process events can be
        #: fused into the delivery event; ``None`` otherwise.
        self._fused: Optional[tuple] = None
        #: receiving :class:`~.node.NetHost` with zero rx processing delay —
        #: its stack entry can be invoked straight from the delivery event
        self._rx_host = None
        self._rx_port = None
        #: precomputed delivery offsets from serialization end
        self._lat = latency_ps
        self._lat_fused = latency_ps
        self._period_pkts = 0
        #: busy periods / packets assigned / longest busy period, in packets
        self.batch_runs = 0
        self.batch_pkts = 0
        self.batch_max_run = 0

    def enable_batching(self, rx_port: Optional[Port] = None) -> None:
        """Switch this direction onto the batched drain fast path.

        When the receiving node is a non-pipelined :class:`~.switch.Switch`
        with a positive processing delay, the rx + process events are fused
        into the delivery event as well (one event per packet end to end).
        """
        from .node import NetHost  # runtime import: node.py imports link
        from .switch import Switch  # runtime import: switch.py imports link

        self.batched = True
        self._rx_port = rx_port
        node = rx_port.node if rx_port is not None else None
        self._fused = None
        self._rx_host = None
        if (isinstance(node, Switch) and node.pipeline is None
                and node.proc_delay_ps > 0):
            self._fused = (node, rx_port, node.proc_delay_ps)
            self._lat_fused = self.latency_ps + node.proc_delay_ps
        elif isinstance(node, NetHost) and node.rx_proc_delay_ps == 0:
            self._rx_host = node

    def transmit(self, pkt: Packet) -> None:
        """Entry point: queue the packet and start the line if idle."""
        if self._run:
            self._settle(self.net.now)
        if not self.queue.enqueue(pkt):
            obs = self.obs
            if obs is not None:
                tracer, tid = obs
                tracer.instant(tid, "netsim", f"drop|{self.label}",
                               self.net.now / 1_000_000,
                               {"dropped": self.queue.stats.dropped})
            rec = _FLOWS[0]
            if rec is not None and pkt.flow:
                rec.hop(pkt.flow, "drop", self.net.name, self.net.now,
                        at=self.label)
            return  # dropped (counted by the queue)
        rec = _FLOWS[0]
        if rec is not None and pkt.flow:
            rec.hop(pkt.flow, "enq", self.net.name, self.net.now,
                    at=self.label)
        if self.batched and self.on_tx_start is None:
            self._assign(pkt, rec)
            return
        if not self.busy:
            obs = self.obs
            if obs is not None:
                self._busy_since = self.net.now
                self._busy_pkts = self.tx_packets
            self._tx_next()

    def _tx_next(self) -> None:
        pkt = self.queue.dequeue()
        if pkt is None:
            self.busy = False
            obs = self.obs
            if obs is not None:
                tracer, tid = obs
                now = self.net.now
                start_us = self._busy_since / 1_000_000
                tracer.span(tid, "netsim", f"busy|{self.label}", start_us,
                            now / 1_000_000 - start_us,
                            {"pkts": self.tx_packets - self._busy_pkts})
                queue = self.queue
                tracer.counter(tid, "netsim", f"q|{self.label}",
                               now / 1_000_000,
                               {"depth_pkts": len(queue),
                                "depth_bytes": queue.bytes_queued,
                                "dropped": queue.stats.dropped,
                                "ecn_marked": queue.stats.ecn_marked})
            return
        self.busy = True
        net = self.net
        rec = _FLOWS[0]
        if rec is not None and pkt.flow:
            rec.hop(pkt.flow, "deq", net.name, net.now, at=self.label)
        if self.on_tx_start is not None:
            self.on_tx_start(pkt, net.now)
        serialization = -(-pkt.size_bits * SEC // self._bw_int)
        # direct queue insert (delays are non-negative by construction);
        # _schedule_at is read through ``net`` so a queue swap stays visible
        net._schedule_at(net, net.now + serialization, self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self.tx_packets += 1
        self.tx_bytes += pkt.size_bytes
        pkt.hops += 1
        obs = self.obs
        if obs is not None and not self.tx_packets & 63:
            # periodic in-busy-period depth sample (every 64th packet)
            tracer, tid = obs
            queue = self.queue
            tracer.counter(tid, "netsim", f"q|{self.label}",
                           self.net.now / 1_000_000,
                           {"depth_pkts": len(queue),
                            "depth_bytes": queue.bytes_queued,
                            "dropped": queue.stats.dropped,
                            "ecn_marked": queue.stats.ecn_marked})
        rec = _FLOWS[0]
        if rec is not None and pkt.flow:
            rec.hop(pkt.flow, "txdone", self.net.name, self.net.now,
                    at=self.label)
        if self.latency_ps > 0:
            net = self.net
            net._schedule_at(net, net.now + self.latency_ps, self.deliver, pkt)
        else:
            self.deliver(pkt)
        self._tx_next()

    # ------------------------------------------------------------------
    # batched fast path
    # ------------------------------------------------------------------

    def _settle(self, now: int) -> None:
        """Dequeue assigned entries whose serialization has started by ``now``.

        Keeps the egress queue's instantaneous occupancy identical to the
        per-packet path, where the head is dequeued the moment it starts
        serializing.  Also detects the idle transition (busy horizon
        passed), closing the busy period for observability/cost accounting
        and resuming the per-packet chain for any packets that were
        enqueued outside the batched path (e.g. after a PTP transparent
        clock installed its tx-start hook on this direction).
        """
        run = self._run
        queue = self.queue
        while run and run[0][0] <= now:
            run.popleft()
            queue.dequeue()
        if not run and self.busy and now >= self._run_end:
            self._close_period()
            if len(queue):
                # unassigned packets (per-packet path took over mid-period)
                self._tx_next()

    def _close_period(self) -> None:
        """Flush one finished busy period (cost model + counters + obs).

        Per-period batch counters are folded in here rather than per packet,
        so the assignment hot path stays minimal;
        :meth:`NetworkSim.batch_stats` accounts for the open period.
        """
        self.busy = False
        pkts = self._period_pkts
        self.batch_pkts += pkts
        if pkts > self.batch_max_run:
            self.batch_max_run = pkts
        self.net.add_work(BATCH_PKT_CYCLES * pkts)
        obs = self.obs
        if obs is not None:
            tracer, tid = obs
            queue = self.queue
            start_us = self._busy_since / 1_000_000
            tracer.span(tid, "netsim", f"busy|{self.label}", start_us,
                        self._run_end / 1_000_000 - start_us,
                        {"pkts": self._period_pkts})
            if not self.batch_runs & 63:
                tracer.counter(tid, "netsim", f"batch|{self.label}",
                               self.net.now / 1_000_000,
                               {"runs": self.batch_runs,
                                "packets": self.batch_pkts,
                                "depth_pkts": len(queue),
                                "dropped": queue.stats.dropped,
                                "ecn_marked": queue.stats.ecn_marked})

    def _assign(self, pkt: Packet, rec=None) -> None:
        """Give an accepted packet its serialization slot and delivery event.

        The slot starts at the busy horizon (or now, when idle) — exactly
        where the per-packet ``_tx_next`` chain would have started it — and
        the only kernel event the packet costs on this hop is its delivery,
        scheduled here at the exact per-packet timestamp.
        """
        net = self.net
        now = net.now
        start = self._run_end
        if start > now:
            # line busy into the future: the packet waits in the queue
            self._run.append((start, pkt))
        elif self.busy and start == now:
            # exact back-to-back arrival: the line never went idle, so the
            # busy period continues and serialization starts immediately
            # (the per-packet path dequeues the head inline at tx start)
            self.queue.dequeue()
        else:
            if self.busy:
                # previous period ended between its last delivery and now
                self._close_period()
            # idle line: serialization starts immediately
            start = now
            self.queue.dequeue()
            self.busy = True
            self._busy_since = now
            self.batch_runs += 1
            self._period_pkts = 0
        end = start + -(-pkt.size_bits * SEC // self._bw_int)
        self._run_end = end
        self.tx_packets += 1
        self.tx_bytes += pkt.size_bytes
        self._period_pkts += 1
        pkt.hops += 1
        if rec is not None and pkt.flow:
            rec.hop(pkt.flow, "deq", net.name, start, at=self.label)
            rec.hop(pkt.flow, "txdone", net.name, end, at=self.label)
        if self._fused is not None:
            net._schedule_at(net, end + self._lat_fused,
                             self._deliver_fused, pkt, end + self._lat)
        elif self._rx_host is not None:
            net._schedule_at(net, end + self._lat, self._deliver_host, pkt)
        else:
            net._schedule_at(net, end + self._lat, self._deliver_one, pkt)

    def _deliver_one(self, pkt: Packet) -> None:
        """Delivery event for a batched packet (non-fused receive side)."""
        self._settle(self.net.now)
        self.deliver(pkt)

    def _deliver_host(self, pkt: Packet) -> None:
        """Delivery event fused with a zero-rx-delay protocol host's stack.

        Skips the generic ``deliver`` closure and ``NetHost.receive``
        dispatch; ``_handle_packet`` is read at fire time so per-delivery
        instrumentation (e.g. the packet-digest tap) still intercepts.
        """
        self._settle(self.net.now)
        self._rx_host._handle_packet(pkt)

    def _deliver_fused(self, pkt: Packet, arrival_ts: int) -> None:
        """Fused rx + switch-process event for a batched packet.

        Replaces the unbatched chain of a delivery event into
        ``Switch.receive`` plus a ``_process`` event ``proc_delay_ps``
        later: this single event fires at the process time and performs
        both, with ``arrival_ts`` carrying the true wire arrival.
        """
        self._settle(self.net.now)
        switch = self._fused[0]
        switch.rx_packets += 1
        pkt.arrival_ts = arrival_ts
        switch.forward(pkt)


class Link:
    """A bidirectional link between two ports."""

    def __init__(self, net: "NetworkSim", port_a: Port, port_b: Port,
                 bandwidth_bps: float, latency_ps: int,
                 queue_a: DropTailQueue, queue_b: DropTailQueue) -> None:
        self.port_a = port_a
        self.port_b = port_b
        self.dir_ab = LinkDirection(
            net, bandwidth_bps, latency_ps, queue_a,
            lambda pkt: port_b.node.receive(pkt, port_b),
            label=f"{port_a.node.name}->{port_b.node.name}")
        self.dir_ba = LinkDirection(
            net, bandwidth_bps, latency_ps, queue_b,
            lambda pkt: port_a.node.receive(pkt, port_a),
            label=f"{port_b.node.name}->{port_a.node.name}")
        port_a.egress = self.dir_ab
        port_b.egress = self.dir_ba
        port_a.peer = port_b
        port_b.peer = port_a


class ExternalLink:
    """Egress direction leaving this partition over a SplitSim channel.

    ``send_fn(pkt)`` is invoked once serialization completes; channel latency
    supplies the propagation delay.  The reverse direction is handled by
    :meth:`NetworkSim.inject`.
    """

    def __init__(self, net: "NetworkSim", port: Port, bandwidth_bps: float,
                 queue: DropTailQueue, send_fn: Callable[[Packet], None]) -> None:
        self.direction = LinkDirection(net, bandwidth_bps, 0, queue,
                                       lambda pkt: send_fn(pkt),
                                       label=f"{port.node.name}->ext")
        port.egress = self.direction
        port.peer = None
        self.port = port
