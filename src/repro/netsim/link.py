"""Ports and links: serialization, propagation, and egress queueing.

A :class:`Link` joins two ports with a pair of independent
:class:`LinkDirection` objects.  Each direction owns its egress queue
(:mod:`repro.netsim.queues`) and models store-and-forward transmission:
serialization at the configured bandwidth followed by propagation latency.

External links (:class:`ExternalLink`) carry packets out of this network
partition — to another partition or to a detailed NIC simulator — via a
SplitSim channel.  They model serialization locally and leave propagation to
the channel latency, so a partitioned topology has exactly the same timing
as the unpartitioned one.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from ..kernel.simtime import SEC
from ..obs.flows import _ACTIVE as _FLOWS
from .packet import Packet
from .queues import DropTailQueue

if TYPE_CHECKING:  # pragma: no cover
    from .network import NetworkSim
    from .node import Node


class Port:
    """An attachment point on a node; sends via its bound egress direction."""

    def __init__(self, node: "Node", index: int) -> None:
        self.node = node
        self.index = index
        self.egress: Optional[LinkDirection] = None
        self.peer: Optional[Port] = None  # None for external links

    def send(self, pkt: Packet) -> None:
        """Transmit out this port via its bound egress direction."""
        if self.egress is None:
            raise RuntimeError(f"{self.node.name} port {self.index}: not linked")
        self.egress.transmit(pkt)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Port {self.node.name}[{self.index}]>"


class LinkDirection:
    """One direction of a link: egress queue -> serialization -> propagation."""

    def __init__(self, net: "NetworkSim", bandwidth_bps: float, latency_ps: int,
                 queue: DropTailQueue,
                 deliver: Callable[[Packet], None],
                 label: str = "") -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.net = net
        self.bandwidth_bps = bandwidth_bps
        self.latency_ps = latency_ps
        self.queue = queue
        self.deliver = deliver
        self.busy = False
        # hot-path cache: integer bandwidth for the inline ceil-division
        # (identical math to simtime.bits_time)
        self._bw_int = int(bandwidth_bps)
        #: Optional hook invoked when a packet starts serialization
        #: (used by PTP transparent clocks to record residence time).
        self.on_tx_start: Optional[Callable[[Packet, int], None]] = None
        self.tx_packets = 0
        self.tx_bytes = 0
        #: direction label for observability tracks ("src->dst")
        self.label = label
        #: ``None`` (tracing off; one pointer test per packet) or a
        #: ``(Tracer, tid)`` pair — emits busy-period spans and sampled
        #: queue-depth counter tracks.
        self.obs: Optional[tuple] = None
        self._busy_since = 0
        self._busy_pkts = 0

    def transmit(self, pkt: Packet) -> None:
        """Entry point: queue the packet and start the line if idle."""
        if not self.queue.enqueue(pkt):
            obs = self.obs
            if obs is not None:
                tracer, tid = obs
                tracer.instant(tid, "netsim", f"drop|{self.label}",
                               self.net.now / 1_000_000,
                               {"dropped": self.queue.stats.dropped})
            rec = _FLOWS[0]
            if rec is not None and pkt.flow:
                rec.hop(pkt.flow, "drop", self.net.name, self.net.now,
                        at=self.label)
            return  # dropped (counted by the queue)
        rec = _FLOWS[0]
        if rec is not None and pkt.flow:
            rec.hop(pkt.flow, "enq", self.net.name, self.net.now,
                    at=self.label)
        if not self.busy:
            obs = self.obs
            if obs is not None:
                self._busy_since = self.net.now
                self._busy_pkts = self.tx_packets
            self._tx_next()

    def _tx_next(self) -> None:
        pkt = self.queue.dequeue()
        if pkt is None:
            self.busy = False
            obs = self.obs
            if obs is not None:
                tracer, tid = obs
                now = self.net.now
                start_us = self._busy_since / 1_000_000
                tracer.span(tid, "netsim", f"busy|{self.label}", start_us,
                            now / 1_000_000 - start_us,
                            {"pkts": self.tx_packets - self._busy_pkts})
                queue = self.queue
                tracer.counter(tid, "netsim", f"q|{self.label}",
                               now / 1_000_000,
                               {"depth_pkts": len(queue),
                                "depth_bytes": queue.bytes_queued,
                                "dropped": queue.stats.dropped,
                                "ecn_marked": queue.stats.ecn_marked})
            return
        self.busy = True
        net = self.net
        rec = _FLOWS[0]
        if rec is not None and pkt.flow:
            rec.hop(pkt.flow, "deq", net.name, net.now, at=self.label)
        if self.on_tx_start is not None:
            self.on_tx_start(pkt, net.now)
        serialization = -(-pkt.size_bits * SEC // self._bw_int)
        # direct queue insert (delays are non-negative by construction);
        # _schedule_at is read through ``net`` so a queue swap stays visible
        net._schedule_at(net, net.now + serialization, self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self.tx_packets += 1
        self.tx_bytes += pkt.size_bytes
        pkt.hops += 1
        obs = self.obs
        if obs is not None and not self.tx_packets & 63:
            # periodic in-busy-period depth sample (every 64th packet)
            tracer, tid = obs
            queue = self.queue
            tracer.counter(tid, "netsim", f"q|{self.label}",
                           self.net.now / 1_000_000,
                           {"depth_pkts": len(queue),
                            "depth_bytes": queue.bytes_queued,
                            "dropped": queue.stats.dropped,
                            "ecn_marked": queue.stats.ecn_marked})
        rec = _FLOWS[0]
        if rec is not None and pkt.flow:
            rec.hop(pkt.flow, "txdone", self.net.name, self.net.now,
                    at=self.label)
        if self.latency_ps > 0:
            net = self.net
            net._schedule_at(net, net.now + self.latency_ps, self.deliver, pkt)
        else:
            self.deliver(pkt)
        self._tx_next()


class Link:
    """A bidirectional link between two ports."""

    def __init__(self, net: "NetworkSim", port_a: Port, port_b: Port,
                 bandwidth_bps: float, latency_ps: int,
                 queue_a: DropTailQueue, queue_b: DropTailQueue) -> None:
        self.port_a = port_a
        self.port_b = port_b
        self.dir_ab = LinkDirection(
            net, bandwidth_bps, latency_ps, queue_a,
            lambda pkt: port_b.node.receive(pkt, port_b),
            label=f"{port_a.node.name}->{port_b.node.name}")
        self.dir_ba = LinkDirection(
            net, bandwidth_bps, latency_ps, queue_b,
            lambda pkt: port_a.node.receive(pkt, port_a),
            label=f"{port_b.node.name}->{port_a.node.name}")
        port_a.egress = self.dir_ab
        port_b.egress = self.dir_ba
        port_a.peer = port_b
        port_b.peer = port_a


class ExternalLink:
    """Egress direction leaving this partition over a SplitSim channel.

    ``send_fn(pkt)`` is invoked once serialization completes; channel latency
    supplies the propagation delay.  The reverse direction is handled by
    :meth:`NetworkSim.inject`.
    """

    def __init__(self, net: "NetworkSim", port: Port, bandwidth_bps: float,
                 queue: DropTailQueue, send_fn: Callable[[Packet], None]) -> None:
        self.direction = LinkDirection(net, bandwidth_bps, 0, queue,
                                       lambda pkt: send_fn(pkt),
                                       label=f"{port.node.name}->ext")
        port.egress = self.direction
        port.peer = None
        self.port = port
