"""Network nodes: the base class and protocol-level hosts.

A :class:`NetHost` is the ns-3-style host: its applications and transport
stack execute with **zero modeled CPU cost** (optionally a fixed per-packet
processing delay).  That is precisely the fidelity gap the paper's case
studies expose — protocol-level hosts are infinitely fast, so server-side
software bottlenecks are invisible.  Detailed hosts live in
:mod:`repro.hostsim` and attach to the network via external links instead.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from ..kernel.rng import make_rng
from .link import Port
from .packet import Packet
from .transport.stack import Stack

if TYPE_CHECKING:  # pragma: no cover
    from .network import NetworkSim


class Node:
    """Anything attachable to links: hosts and switches."""

    def __init__(self, net: "NetworkSim", name: str) -> None:
        self.net = net
        self.name = name
        self.ports: List[Port] = []

    def new_port(self) -> Port:
        """Allocate the next attachment point on this node."""
        port = Port(self, len(self.ports))
        self.ports.append(port)
        return port

    def receive(self, pkt: Packet, port: Port) -> None:
        """Handle a packet delivered to this node on ``port``."""
        raise NotImplementedError

    def invalidate_routes(self) -> None:
        """Topology-change hook: drop any cached forwarding decisions.

        No-op for plain nodes; switches clear their route cache.  Called by
        :meth:`NetworkSim.add_link` / :meth:`NetworkSim.add_external`.
        """

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


class NetHost(Node):
    """Protocol-level end host with a transport stack and applications.

    Implements the stack environment interface (``now``, ``call_after``,
    ``tx``, ``charge``, ``rng``); ``charge`` is a no-op because protocol-
    level host software is free, by definition.
    """

    def __init__(self, net: "NetworkSim", name: str, addr: int,
                 rx_proc_delay_ps: int = 0) -> None:
        super().__init__(net, name)
        self.addr = addr
        self.rx_proc_delay_ps = rx_proc_delay_ps
        self.stack = Stack(env=self, addr=addr)
        self.apps: list = []
        self._rng = make_rng(net.seed_root, f"host.{name}")
        # hot-path cache: the per-packet receive path skips two attribute
        # traversals per delivery
        self._handle_packet = self.stack.handle_packet
        self._call_after = net.call_after

    # -- stack environment interface ---------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time (stack environment interface)."""
        return self.net.now

    def call_after(self, delay: int, fn, *args):
        """Schedule a callback relative to now (stack environment interface)."""
        return self.net.call_after(delay, fn, *args)

    def cancel(self, ev) -> None:
        """Cancel a previously scheduled callback."""
        self.net.cancel(ev)

    def tx(self, pkt: Packet) -> None:
        """Transmit a packet out this host's (single) network port."""
        if not self.ports:
            raise RuntimeError(f"{self.name}: host has no network port")
        pkt.create_ts = pkt.create_ts or self.net.now
        self.ports[0].send(pkt)

    def charge(self, instructions: int) -> None:
        """Protocol-level hosts model no software execution cost."""

    @property
    def rng(self):
        """Per-host deterministic RNG stream (partitioning-independent)."""
        return self._rng

    def clock_ps(self) -> int:
        """Protocol-level hosts have perfect clocks (the simulated time)."""
        return self.net.now

    # -- network side -------------------------------------------------------

    def receive(self, pkt: Packet, port: Port) -> None:
        """Deliver a received packet to the transport stack."""
        if self.rx_proc_delay_ps > 0:
            self._call_after(self.rx_proc_delay_ps, self._handle_packet, pkt)
        else:
            self._handle_packet(pkt)

    # -- applications --------------------------------------------------------

    def add_app(self, app) -> None:
        """Attach an application; it is started when the simulation starts."""
        self.apps.append(app)
        app.bind(self)
