"""Declarative fidelity-tier selection for the network simulator.

A :class:`FidelityConfig` attached to an
:class:`~repro.orchestration.instantiate.Instantiation` chooses, per link
direction and per flow, how much detail the network spends:

``batching``
    The packet tier's batched fast path — busy links drain runs of
    back-to-back packets with one run-completion event instead of one
    ``tx_done`` per packet, preserving ECN/drop decisions bit-for-bit
    (see :mod:`repro.netsim.link`).
``fluid``
    The flow-level tier — eligible long-lived DCTCP flows are promoted out
    of the packet path entirely and advanced in rate-space between discrete
    rate-update ticks (see :mod:`repro.netsim.fluid`).  Short RPC traffic
    stays packet-level; flows hand back to the packet tier to finish.

The default ``Instantiation`` (no fidelity config) is pure packet-level,
so every existing experiment and the pinned event-timeline determinism
digest are untouched.

:func:`packet_digest` defines the *packet-observable* digest used to pin
the batched path against the per-packet oracle: the kernel event timeline
necessarily differs when batching fuses events, so equivalence is asserted
over what the network delivers — every packet arrival at every protocol
host (timestamp, addressing, TCP/ECN state) plus the final per-queue
drop/mark/depth statistics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

from ..kernel.simtime import US

#: Default fluid rate-update interval (well under the fig6 RTTs, so the
#: discretization error stays small against the packet oracle).
DEFAULT_FLUID_DT_PS = 20 * US


@dataclass
class FidelityConfig:
    """Per-link / per-flow fidelity choices, applied at build time.

    Parameters
    ----------
    batching:
        Enable the batched link drain on selected directions.
    batch_links:
        Direction-label predicate (``"a->b"``) selecting which directions
        batch; ``None`` batches all of them.
    fluid:
        Install the fluid flow-level tier on each network partition.
    fluid_links:
        Direction-label predicate restricting which links a fluid flow's
        path may traverse; a flow is only promoted when *every* hop on its
        path is eligible.  ``None`` allows all internal links.
    fluid_dt_ps:
        Rate-update tick interval for the fluid model.
    promote_bytes:
        A flow becomes promotion-eligible only after this many bytes have
        been cumulatively acknowledged at packet level (so slow-start and
        short RPCs stay packet-accurate).
    demote_residual_bytes:
        A fluid flow is handed back to the packet tier when no more than
        this many bytes remain, so connection teardown (FIN exchange) is
        always packet-level.
    """

    batching: bool = False
    batch_links: Optional[Callable[[str], bool]] = None
    fluid: bool = False
    fluid_links: Optional[Callable[[str], bool]] = None
    fluid_dt_ps: int = DEFAULT_FLUID_DT_PS
    promote_bytes: int = 64 * 1024
    demote_residual_bytes: int = 64 * 1024

    def apply(self, net) -> None:
        """Install the selected tiers on one network partition."""
        if self.batching:
            net.enable_batching(self.batch_links)
        if self.fluid:
            from .fluid import FluidDomain
            FluidDomain.install(net, self)


def _queue_stat_lines(net) -> list:
    """Final per-queue statistics lines, in stable topology order."""
    lines = []
    for direction, _ in net._all_directions():
        if direction._run:
            # align in-flight batched runs with the per-packet path, which
            # dequeues each packet the moment it starts serializing
            direction._settle(net.now)
        st = direction.queue.stats
        # max_depth is deliberately excluded: a same-ps enqueue racing the
        # same-ps head dequeue is a concurrent tie (DESIGN.md §3) whose
        # order the two paths may resolve differently, momentarily reading
        # depth one higher without affecting any mark/drop decision.
        lines.append(f"q {net.name} {direction.label} {st.enqueued} "
                     f"{st.dequeued} {st.dropped} {st.ecn_marked}")
    return lines


def queue_decision_digest(system, duration_ps: int, fidelity=None,
                          mode: str = "fast") -> str:
    """SHA-256 over every queue's final enqueue/dequeue/drop/mark counters.

    The batched path guarantees queue *decisions* bit-for-bit
    unconditionally — including on workloads where phase-locked senders
    collide at the same picosecond on a shared queue and the service
    order of the colliding (concurrent, DESIGN.md §3) packets may swap.
    Use :func:`packet_digest` for the stronger per-delivery equivalence
    on collision-free workloads.
    """
    from ..orchestration.instantiate import Instantiation

    exp = Instantiation(system=system, mode=mode, fidelity=fidelity).build()
    exp.run(duration_ps)
    h = hashlib.sha256()
    for net in exp.network_components():
        for line in _queue_stat_lines(net):
            h.update(line.encode())
            h.update(b"\n")
    return h.hexdigest()


def packet_digest(system, duration_ps: int, fidelity=None,
                  mode: str = "fast") -> str:
    """SHA-256 over everything the network observably delivers.

    Builds and runs ``system`` for ``duration_ps`` under the given
    fidelity config, recording every packet handed to a protocol-level
    host (delivery time, addresses, ports, TCP seq/ack/flags, payload
    length, wire size, ECN state) plus the final per-queue statistics.
    Two configs that produce the same digest delivered bit-identical
    traffic through identically-behaving queues.

    Records are hashed in sorted order: deliveries at the *same picosecond*
    to *different* hosts are concurrent (DESIGN.md §3 tie semantics — the
    batched path may execute them in a different kernel order), and every
    record embeds its own timestamp, so sorting canonicalizes exactly that
    reordering and nothing else.
    """
    from ..netsim.node import NetHost
    from ..orchestration.instantiate import Instantiation

    exp = Instantiation(system=system, mode=mode, fidelity=fidelity).build()
    lines: list = []

    def tap(net, name, handler):
        def wrapped(pkt):
            lines.append(
                f"{name} {net.now} {pkt.src} {pkt.dst} {pkt.proto} "
                f"{pkt.src_port} {pkt.dst_port} {pkt.seq} {pkt.ack} "
                f"{pkt.flags} {pkt.data_len} {pkt.size_bytes} "
                f"{int(pkt.ce)} {int(pkt.ece)}")
            handler(pkt)
        return wrapped

    for net in exp.network_components():
        for node in net.nodes.values():
            if isinstance(node, NetHost):
                node._handle_packet = tap(net, node.name, node._handle_packet)
    exp.run(duration_ps)
    for net in exp.network_components():
        lines.extend(_queue_stat_lines(net))
    h = hashlib.sha256()
    for line in sorted(lines):
        h.update(line.encode())
        h.update(b"\n")
    return h.hexdigest()
