"""Decomposing a network topology into parallel simulator partitions.

This is SplitSim's "parallelization through decomposition" applied to the
network simulator (paper §3.2): the topology is split at link boundaries
into several :class:`~repro.netsim.network.NetworkSim` components, and every
cut link is carried over a SplitSim channel.  When several links cross the
same partition pair, they share a single synchronized **trunk** channel
(:mod:`repro.channels.trunk`) instead of paying sync cost per link.

Timing is preserved exactly: a cut link's serialization happens in the
sending partition (at the link's bandwidth), the trunk channel's latency is
the *minimum* propagation latency of its bundled links, and any remainder is
re-added at injection time.  Routing is computed globally before splitting,
so a partitioned simulation delivers packets along identical paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..channels.channel import ChannelEnd
from ..channels.trunk import TrunkEnd
from ..kernel.simtime import US
from ..parallel.model import ModelChannel
from .network import ExternalAttachment, NetworkSim
from .topology import LinkSpec, TopoSpec, _install_fib


@dataclass
class PartitionedBuild:
    """Result of a partitioned instantiation."""

    parts: Dict[str, NetworkSim]
    spec: TopoSpec
    assignment: Dict[str, str]
    #: external (detailed) host name -> its attachment (in some partition)
    attachments: Dict[str, ExternalAttachment]
    #: channel end pairs to pass to ``Simulation.connect``
    channels: List[Tuple[ChannelEnd, ChannelEnd]]
    #: channel descriptions for the virtual-time execution model
    model_channels: List[ModelChannel] = field(default_factory=list)

    def host(self, name: str):
        """Look up an instantiated host across all partitions."""
        part = self.assignment[name]
        return self.parts[part].nodes[name]

    def all_components(self) -> List[NetworkSim]:
        """Every network-simulator partition, for Simulation.add."""
        return list(self.parts.values())


def instantiate_partitioned(spec: TopoSpec, assignment: Dict[str, str],
                            flavor: str = "ns3", seed: int = 0,
                            name_prefix: str = "net",
                            use_trunk: bool = True) -> PartitionedBuild:
    """Build ``spec`` as several NetworkSims according to ``assignment``.

    ``assignment`` maps every non-external node name to a partition label.
    ``use_trunk=False`` gives each cut link its own synchronized channel
    (the configuration the trunk-adapter ablation compares against).
    """
    internal = {n for n in list(spec.switches) +
                [h.name for h in spec.hosts.values() if not h.external]}
    missing = internal - set(assignment)
    if missing:
        raise ValueError(f"unassigned nodes: {sorted(missing)[:5]} ...")

    part_names = sorted(set(assignment[n] for n in internal))
    parts: Dict[str, NetworkSim] = {
        p: NetworkSim(f"{name_prefix}.{p}", flavor=flavor, seed=seed)
        for p in part_names
    }

    for sw in spec.switches.values():
        net = parts[assignment[sw.name]]
        switch = net.add_switch(sw.name, sw.proc_delay_ps)
        if sw.pipeline_factory is not None:
            switch.pipeline = sw.pipeline_factory(switch)
    for hs in spec.hosts.values():
        if not hs.external:
            parts[assignment[hs.name]].add_host(hs.name, hs.addr,
                                                hs.rx_proc_delay_ps)

    attachments: Dict[str, ExternalAttachment] = {}
    port_map: Dict[Tuple[str, str], object] = {}
    #: (part_a, part_b) -> list of cut links, a-side in part_a
    cuts: Dict[Tuple[str, str], List[LinkSpec]] = {}

    def part_of(node: str) -> Optional[str]:
        return assignment.get(node)

    for ls in spec.links:
        ext_a = ls.a in spec.hosts and spec.hosts[ls.a].external
        ext_b = ls.b in spec.hosts and spec.hosts[ls.b].external
        if ext_a or ext_b:
            inside, outside = (ls.b, ls.a) if ext_a else (ls.a, ls.b)
            net = parts[assignment[inside]]
            att = net.add_external(outside, net.nodes[inside], ls.bandwidth_bps,
                                   ls.queue_capacity_bytes, ls.ecn_threshold_pkts)
            attachments[outside] = att
            port_map[(inside, outside)] = att.port
            continue
        pa, pb = assignment[ls.a], assignment[ls.b]
        if pa == pb:
            net = parts[pa]
            link = net.add_link(net.nodes[ls.a], net.nodes[ls.b],
                                ls.bandwidth_bps, ls.latency_ps,
                                ls.queue_capacity_bytes, ls.ecn_threshold_pkts)
            if ls.a in spec.hosts:
                link.dir_ab.queue.ecn_threshold_pkts = None
            if ls.b in spec.hosts:
                link.dir_ba.queue.ecn_threshold_pkts = None
            port_map[(ls.a, ls.b)] = link.port_a
            port_map[(ls.b, ls.a)] = link.port_b
        else:
            key = (pa, pb) if pa < pb else (pb, pa)
            cuts.setdefault(key, []).append(ls)

    channels: List[Tuple[ChannelEnd, ChannelEnd]] = []
    model_channels: List[ModelChannel] = []

    for (pa, pb), links in sorted(cuts.items()):
        links = sorted(links, key=lambda l: (l.a, l.b))
        base_latency = min(l.latency_ps for l in links)
        if use_trunk:
            trunk_a = TrunkEnd(f"{parts[pa].name}->{pb}", latency=base_latency)
            trunk_b = TrunkEnd(f"{parts[pb].name}->{pa}", latency=base_latency)
            parts[pa].attach_end(trunk_a, trunk_a.dispatch)
            parts[pb].attach_end(trunk_b, trunk_b.dispatch)
            channels.append((trunk_a, trunk_b))
            model_channels.append(ModelChannel(parts[pa].name, parts[pb].name,
                                               base_latency))
            for sub_id, ls in enumerate(links):
                _bind_cut_link(spec, parts, assignment, port_map, ls, pa,
                               trunk_a.port(sub_id), trunk_b.port(sub_id),
                               base_latency, attachments)
        else:
            for ls in links:
                end_a = ChannelEnd(f"{parts[pa].name}:{ls.a}-{ls.b}",
                                   latency=ls.latency_ps)
                end_b = ChannelEnd(f"{parts[pb].name}:{ls.b}-{ls.a}",
                                   latency=ls.latency_ps)
                channels.append((end_a, end_b))
                model_channels.append(ModelChannel(parts[pa].name,
                                                   parts[pb].name,
                                                   ls.latency_ps))
                _bind_cut_link_plain(spec, parts, assignment, port_map, ls,
                                     pa, end_a, end_b)

    switch_net = {sw: parts[assignment[sw]] for sw in spec.switches}
    _install_fib(spec, switch_net, port_map)

    for hs in spec.hosts.values():
        if not hs.external:
            host = parts[assignment[hs.name]].nodes[hs.name]
            for factory in hs.app_factories:
                host.add_app(factory(host))

    return PartitionedBuild(parts=parts, spec=spec, assignment=assignment,
                            attachments=attachments, channels=channels,
                            model_channels=model_channels)


def _bind_cut_link(spec, parts, assignment, port_map, ls: LinkSpec, part_a,
                   port_a, port_b, base_latency: int, attachments) -> None:
    """Wire one cut link over a pair of trunk ports.

    ``port_a`` belongs to partition ``part_a``; each endpoint picks the
    trunk port of *its own* partition (the link's endpoint order is
    unrelated to partition-label order).
    """
    extra = ls.latency_ps - base_latency
    for inside, other in ((ls.a, ls.b), (ls.b, ls.a)):
        tport = port_a if assignment[inside] == part_a else port_b
        net = parts[assignment[inside]]
        att = net.add_external(f"cut:{inside}:{other}", net.nodes[inside],
                               ls.bandwidth_bps, ls.queue_capacity_bytes,
                               ls.ecn_threshold_pkts)
        if inside in spec.hosts:
            att.ext.direction.queue.ecn_threshold_pkts = None
        port_map[(inside, other)] = att.port
        _bind_attachment_to_port(net, att, tport, extra)


def _bind_cut_link_plain(spec, parts, assignment, port_map, ls: LinkSpec,
                         part_a, end_a: ChannelEnd, end_b: ChannelEnd) -> None:
    """Wire one cut link over its own dedicated channel."""
    from ..channels.messages import EthMsg
    for inside, other in ((ls.a, ls.b), (ls.b, ls.a)):
        end = end_a if assignment[inside] == part_a else end_b
        net = parts[assignment[inside]]
        att = net.add_external(f"cut:{inside}:{other}", net.nodes[inside],
                               ls.bandwidth_bps, ls.queue_capacity_bytes,
                               ls.ecn_threshold_pkts)
        if inside in spec.hosts:
            att.ext.direction.queue.ecn_threshold_pkts = None
        port_map[(inside, other)] = att.port
        net.bind_external_to_end(att.label, end)


def _bind_attachment_to_port(net: NetworkSim, att: ExternalAttachment,
                             tport, extra_latency_ps: int) -> None:
    from ..channels.messages import EthMsg
    att.bind_send(lambda pkt: tport.send(
        EthMsg(packet=pkt, flow=pkt.flow), net.now))
    if extra_latency_ps > 0:
        tport.on_receive(
            lambda msg: net.call_after(extra_latency_ps, att.inject, msg.packet))
    else:
        tport.on_receive(lambda msg: att.inject(msg.packet))


# ---------------------------------------------------------------------------
# Partition assignment helpers (strategies are in repro.orchestration).
# ---------------------------------------------------------------------------

def assign_all(spec: TopoSpec, label: str = "p0") -> Dict[str, str]:
    """Everything in one partition (strategy ``s``)."""
    names = list(spec.switches) + [
        h.name for h in spec.hosts.values() if not h.external]
    return {n: label for n in names}


def assign_hosts_with_switch(spec: TopoSpec,
                             switch_part: Dict[str, str]) -> Dict[str, str]:
    """Extend a switch-level assignment: each host joins its switch."""
    assignment = dict(switch_part)
    neighbor: Dict[str, str] = {}
    for ls in spec.links:
        if ls.a in spec.hosts and ls.b in spec.switches:
            neighbor[ls.a] = ls.b
        elif ls.b in spec.hosts and ls.a in spec.switches:
            neighbor[ls.b] = ls.a
    for hs in spec.hosts.values():
        if hs.external:
            continue
        sw = neighbor.get(hs.name)
        if sw is None or sw not in assignment:
            raise ValueError(f"host {hs.name}: no assigned adjacent switch")
        assignment[hs.name] = assignment[sw]
    return assignment
