"""PTP transparent-clock (TC) support in switches.

IEEE 1588 transparent clocks measure each PTP event packet's residence time
in the switch — including egress queueing — and accumulate it into the
packet's correction field, so the slave can subtract switch-induced delay
variance from its offset computation.  The paper extends ns-3 with exactly
this (§4.3); here it is a hook on every switch egress direction: when a PTP
event packet starts serialization, the time since its switch arrival is
added to ``packet.residence_ps``.

Call :func:`install_transparent_clocks` on an instantiated
:class:`~repro.netsim.network.NetworkSim` (works for partitioned builds by
calling it per partition).
"""

from __future__ import annotations

from .link import LinkDirection
from .network import NetworkSim
from .packet import Packet
from .switch import Switch


def _is_ptp_event(pkt: Packet) -> bool:
    return bool(getattr(pkt.payload, "ptp_event", False))


def _tc_hook(pkt: Packet, now: int) -> None:
    if _is_ptp_event(pkt) and pkt.arrival_ts:
        pkt.residence_ps += max(0, now - pkt.arrival_ts)


def install_transparent_clocks(net: NetworkSim) -> int:
    """Enable TC residence-time correction on all switch egress queues.

    Returns the number of egress directions instrumented.
    """
    hooked = 0
    for link in net.links:
        for direction, src in ((link.dir_ab, link.port_a.node),
                               (link.dir_ba, link.port_b.node)):
            if isinstance(src, Switch):
                direction.on_tx_start = _tc_hook
                hooked += 1
    for att in net.externals.values():
        if isinstance(att.port.node, Switch):
            att.ext.direction.on_tx_start = _tc_hook
            hooked += 1
    return hooked
