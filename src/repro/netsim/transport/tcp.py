"""TCP with NewReno and DCTCP congestion control.

The implementation models the mechanisms that matter for data-center
congestion experiments: slow start, AIMD congestion avoidance, fast
retransmit/recovery on three duplicate ACKs, RTO with exponential backoff,
cumulative ACKs with out-of-order reassembly, and — for the ``"dctcp"``
variant — per-packet CE echo and the DCTCP alpha estimator with
fractional window reduction (Alizadeh et al.).

Sequence space is in bytes.  Application data is a counted byte stream
(``send(nbytes)``); receivers observe cumulative in-order delivery through
``on_delivered``.  This matches how the paper's workloads use TCP (bulk
transfers); request/response workloads in the case studies run over UDP,
as NetCache and Pegasus do.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, TYPE_CHECKING

from ...kernel.simtime import MS, US
from ...obs.flows import _ACTIVE as _FLOWS, env_track
from ..packet import HEADER_BYTES, Packet
from . import costs

if TYPE_CHECKING:  # pragma: no cover
    from .stack import Stack

MSS = 1448
INIT_CWND = 10 * MSS
MIN_RTO_PS = 1 * MS
INIT_RTO_PS = 10 * MS
DCTCP_G = 1.0 / 16.0


class TcpConnection:
    """One TCP connection endpoint."""

    def __init__(self, stack: "Stack", local_port: int, peer: int,
                 peer_port: int, variant: str = "newreno",
                 is_client: bool = True,
                 on_connected: Optional[Callable[["TcpConnection"], None]] = None,
                 ) -> None:
        if variant not in ("newreno", "dctcp"):
            raise ValueError(f"unknown TCP variant {variant!r}")
        self.stack = stack
        self.env = stack.env
        self.local_port = local_port
        self.peer = peer
        self.peer_port = peer_port
        self.variant = variant
        self.is_client = is_client
        self.on_connected = on_connected
        #: receiver-side callback: fn(total_in_order_bytes)
        self.on_delivered: Optional[Callable[[int], None]] = None

        self.state = "closed"

        # sender state
        self.snd_una = 0
        self.snd_nxt = 0
        self.app_limit = 0  # total bytes the application has asked to send
        self.cwnd = INIT_CWND
        self.ssthresh = 1 << 30
        self.dup_acks = 0
        self.recover = 0
        self.in_recovery = False
        self.retransmits = 0
        self.timeouts = 0

        # RTT estimation (ps)
        self.srtt: Optional[int] = None
        self.rttvar = 0
        self.rto = INIT_RTO_PS
        self._rto_timer = None
        self._ts_seq: Optional[int] = None  # seq being timed
        self._ts_sent = 0

        # receiver state
        self.rcv_nxt = 0
        self.delivered_bytes = 0
        self._ooo: Dict[int, int] = {}  # seq -> length
        self._peer_fin_at: Optional[int] = None

        # DCTCP state (alpha starts at 1.0 as in the Linux implementation:
        # the first marked window halves cwnd, taming slow-start overshoot)
        self.dctcp_alpha = 1.0
        self._dctcp_bytes_acked = 0
        self._dctcp_bytes_marked = 0
        self._dctcp_window_end = 0
        self._last_pkt_ce = False  # receiver: CE of most recent data packet

        self.fin_sent = False
        self.closed_cb: Optional[Callable[[], None]] = None

        #: Fluid fidelity tier (see :mod:`repro.netsim.fluid`): while
        #: ``fluid_mode`` is set this endpoint emits no data segments —
        #: the flow advances analytically and the tick keeps
        #: ``snd_una == snd_nxt`` (sender) / ``rcv_nxt`` (receiver) moving.
        self.fluid_mode = False
        self.fluid_flow = None

    # ---------------------------------------------------------------- utils

    @property
    def ect(self) -> bool:
        """Whether data segments are sent ECN-capable."""
        return self.variant == "dctcp"

    def _emit(self, flags: str, seq: int = 0, ack: int = 0,
              length: int = 0, ece: bool = False) -> None:
        pkt = Packet(
            src=self.stack.addr, dst=self.peer,
            size_bytes=length + HEADER_BYTES + 14,
            proto="tcp", src_port=self.local_port, dst_port=self.peer_port,
            seq=seq, ack=ack, flags=flags, ece=ece, data_len=length,
            ect=self.ect and length > 0,
            create_ts=self.env.now,
        )
        rec = _FLOWS[0]
        if rec is not None:
            # Segment birth: every TCP segment is its own traced flow.
            # Unsampled segments stay untagged (flow==0 downstream).
            f = rec.new_flow(self.stack.addr)
            if rec.sampled(f):
                pkt.flow = f
                track, at = env_track(self.env)
                rec.hop(f, "origin", track, self.env.now, at=at)
        self.env.tx(pkt)

    # ------------------------------------------------------------- lifecycle

    def open(self) -> None:
        """Client side: begin the three-way handshake."""
        self.state = "syn_sent"
        self._emit("S")
        self._arm_rto()

    def send(self, nbytes: int) -> None:
        """Queue ``nbytes`` more application bytes for transmission."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self.app_limit += nbytes
        self._try_send()

    def close(self) -> None:
        """Send FIN once all queued data is out (half-close semantics)."""
        self.fin_sent = True
        self._try_send()

    # ------------------------------------------------------------- sending

    def _flight(self) -> int:
        return self.snd_nxt - self.snd_una

    def _try_send(self) -> None:
        if self.state != "established" or self.fluid_mode:
            return
        while (self.snd_nxt < self.app_limit
               and self._flight() + MSS <= self.cwnd):
            length = min(MSS, self.app_limit - self.snd_nxt)
            self._send_segment(self.snd_nxt, length)
            self.snd_nxt += length
        if (self.fin_sent and self.snd_nxt == self.app_limit
                and self.state == "established"):
            self.state = "fin_wait"
            self._emit("FA", seq=self.snd_nxt, ack=self.rcv_nxt)

    def _send_segment(self, seq: int, length: int, retransmit: bool = False) -> None:
        self.env.charge(costs.TCP_TX_INSTR
                        + int(costs.COPY_INSTR_PER_BYTE * length))
        self._emit("A", seq=seq, ack=self.rcv_nxt, length=length)
        if retransmit:
            self.retransmits += 1
        if self._ts_seq is None and not retransmit:
            self._ts_seq = seq + length
            self._ts_sent = self.env.now
        self._arm_rto()

    # ------------------------------------------------------------ receiving

    def on_packet(self, pkt: Packet) -> None:
        """Demultiplexed entry point for every packet of this connection."""
        flags = pkt.flags
        if "S" in flags and "A" in flags:
            self._on_synack(pkt)
            return
        if "S" in flags:
            self._on_syn(pkt)
            return
        if "F" in flags:
            self._on_fin(pkt)
            # fall through: FIN may carry an ACK
        length = pkt.data_len
        if length > 0:
            self._on_data(pkt, length)
        if "A" in flags:
            self._on_ack(pkt)

    def _on_syn(self, pkt: Packet) -> None:
        if self.state == "closed":
            self.state = "syn_rcvd"
            self._emit("SA", ack=0)
            self._arm_rto()

    def _on_synack(self, pkt: Packet) -> None:
        if self.state == "syn_sent":
            self.state = "established"
            self._cancel_rto()
            self._emit("A", ack=0)
            if self.on_connected is not None:
                self.on_connected(self)
            self._try_send()

    def _on_fin(self, pkt: Packet) -> None:
        fin_seq = pkt.seq
        self._peer_fin_at = fin_seq
        self._maybe_finish()
        self._emit("A", ack=self.rcv_nxt)

    def _maybe_finish(self) -> None:
        if self._peer_fin_at is not None and self.rcv_nxt >= self._peer_fin_at:
            if self.state not in ("closed",):
                self.state = "close_wait"
                if self.closed_cb is not None:
                    self.closed_cb()

    def _on_data(self, pkt: Packet, length: int) -> None:
        if self.state == "syn_rcvd":
            self.state = "established"
            self._cancel_rto()
            self._try_send()
        self.env.charge(costs.TCP_RX_INSTR
                        + int(costs.COPY_INSTR_PER_BYTE * length))
        self._last_pkt_ce = pkt.ce
        seq = pkt.seq
        if seq + length > self.rcv_nxt:
            self._ooo[seq] = max(self._ooo.get(seq, 0), length)
            advanced = False
            while True:
                # pop any segment that extends the in-order prefix
                hit = None
                for s, ln in self._ooo.items():
                    if s <= self.rcv_nxt < s + ln or s == self.rcv_nxt:
                        hit = (s, ln)
                        break
                if hit is None:
                    break
                s, ln = hit
                del self._ooo[s]
                new_edge = max(self.rcv_nxt, s + ln)
                self.delivered_bytes += new_edge - self.rcv_nxt
                self.rcv_nxt = new_edge
                advanced = True
            if advanced and self.on_delivered is not None:
                self.on_delivered(self.delivered_bytes)
        # ACK every data packet; DCTCP echoes the CE bit of this packet.
        ece = self._last_pkt_ce if self.variant == "dctcp" else False
        self._emit("A", ack=self.rcv_nxt, ece=ece)
        self._maybe_finish()

    # ---------------------------------------------------------------- ACKs

    def _on_ack(self, pkt: Packet) -> None:
        if self.state == "syn_rcvd":
            self.state = "established"
            self._cancel_rto()
            self._try_send()  # flush data queued while mid-handshake
            return
        ack = pkt.ack
        self.env.charge(costs.TCP_ACK_INSTR)
        if ack > self.snd_una:
            acked = ack - self.snd_una
            self.snd_una = ack
            self.dup_acks = 0
            self._rtt_sample(ack)
            if self.variant == "dctcp":
                self._dctcp_on_ack(acked, pkt.ece)
            if self.in_recovery:
                if ack >= self.recover:
                    self.in_recovery = False
                    self.cwnd = self.ssthresh
                else:
                    # partial ACK: retransmit the next missing segment
                    length = min(MSS, self.app_limit - self.snd_una)
                    if length > 0:
                        self._send_segment(self.snd_una, length, retransmit=True)
            else:
                self._grow_cwnd(acked)
            if self.snd_una == self.snd_nxt:
                self._cancel_rto()
            else:
                self._arm_rto()
            self._try_send()
            ctl = self.stack.fluid_ctl
            if ctl is not None and not self.fluid_mode:
                ctl.consider(self)
        elif ack == self.snd_una and self._flight() > 0:
            self.dup_acks += 1
            if self.dup_acks == 3 and not self.in_recovery:
                self._enter_fast_recovery()

    def _grow_cwnd(self, acked: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += acked  # slow start
        else:
            self.cwnd += max(1, MSS * acked // self.cwnd)

    def _enter_fast_recovery(self) -> None:
        self.ssthresh = max(self._flight() // 2, 2 * MSS)
        self.cwnd = self.ssthresh
        self.in_recovery = True
        self.recover = self.snd_nxt
        length = min(MSS, self.app_limit - self.snd_una)
        if length > 0:
            self._send_segment(self.snd_una, length, retransmit=True)

    # --------------------------------------------------------------- DCTCP

    def _dctcp_on_ack(self, acked: int, ece: bool) -> None:
        self._dctcp_bytes_acked += acked
        if ece:
            self._dctcp_bytes_marked += acked
        if self.snd_una >= self._dctcp_window_end:
            if self._dctcp_bytes_acked > 0:
                frac = self._dctcp_bytes_marked / self._dctcp_bytes_acked
                self.dctcp_alpha = ((1 - DCTCP_G) * self.dctcp_alpha
                                    + DCTCP_G * frac)
                if self._dctcp_bytes_marked > 0:
                    self.cwnd = max(
                        MSS, int(self.cwnd * (1 - self.dctcp_alpha / 2)))
                    # a marked window ends slow start
                    self.ssthresh = max(self.cwnd, 2 * MSS)
            self._dctcp_bytes_acked = 0
            self._dctcp_bytes_marked = 0
            self._dctcp_window_end = self.snd_nxt

    # ----------------------------------------------------------------- RTT

    def _rtt_sample(self, ack: int) -> None:
        if self._ts_seq is not None and ack >= self._ts_seq:
            sample = self.env.now - self._ts_sent
            if self.srtt is None:
                self.srtt = sample
                self.rttvar = sample // 2
            else:
                err = abs(sample - self.srtt)
                self.rttvar = (3 * self.rttvar + err) // 4
                self.srtt = (7 * self.srtt + sample) // 8
            self.rto = max(MIN_RTO_PS, self.srtt + 4 * self.rttvar)
            self._ts_seq = None

    # ---------------------------------------------------------------- timers

    def _arm_rto(self) -> None:
        self._cancel_rto()
        self._rto_timer = self.env.call_after(self.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_timer is not None:
            self.env.cancel(self._rto_timer)
            self._rto_timer = None

    def _on_rto(self) -> None:
        self._rto_timer = None
        self.timeouts += 1
        if self.state == "syn_sent":
            self._emit("S")
            self.rto = min(self.rto * 2, 60 * 1000 * MS)
            self._arm_rto()
            return
        if self.state == "syn_rcvd":
            self._emit("SA", ack=0)
            self._arm_rto()
            return
        if self._flight() <= 0:
            return
        self.ssthresh = max(self._flight() // 2, 2 * MSS)
        self.cwnd = MSS
        self.in_recovery = False
        self.dup_acks = 0
        self._ts_seq = None
        self.rto = min(self.rto * 2, 60 * 1000 * MS)
        length = min(MSS, max(self.app_limit - self.snd_una, 0)) or MSS
        self._send_segment(self.snd_una, min(length, MSS), retransmit=True)
