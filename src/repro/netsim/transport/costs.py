"""Instruction-count costs of network stack operations.

The transport code is shared between protocol-level hosts (where
``env.charge`` is a no-op — host software is free, as in ns-3) and detailed
hosts (where every charged instruction advances the simulated CPU).  The
counts below are rough Linux-stack magnitudes: a few thousand instructions
per UDP datagram and per TCP segment, which at a few GHz yields the
microsecond-scale per-packet software costs that make end-to-end results
diverge from protocol-level ones.
"""

#: Sending one UDP datagram (syscall + ip/udp tx path + driver handoff).
UDP_TX_INSTR = 3_200
#: Receiving one UDP datagram (irq bottom half + demux + copy to user).
UDP_RX_INSTR = 4_000

#: Transmitting one TCP segment.
TCP_TX_INSTR = 5_200
#: Receiving one TCP segment (incl. ACK generation).
TCP_RX_INSTR = 6_000
#: Pure ACK processing at the sender.
TCP_ACK_INSTR = 1_800

#: Per-byte copy cost (applies to payload bytes moved to/from user space).
COPY_INSTR_PER_BYTE = 0.05
