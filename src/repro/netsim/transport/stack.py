"""Transport stack: socket creation and packet demultiplexing.

The stack is deliberately environment-agnostic.  Its ``env`` must provide:

``now``             current simulated time (picoseconds)
``call_after``      schedule a callback, returning a cancellable handle
``cancel``          cancel such a handle
``tx(pkt)``         hand a packet to the interface for transmission
``charge(instr)``   account simulated CPU instructions (no-op on
                    protocol-level hosts)
``rng``             a seeded ``random.Random``

Protocol-level hosts (:class:`repro.netsim.node.NetHost`) and detailed hosts
(:mod:`repro.hostsim`) both satisfy this, so one UDP/TCP implementation
serves every fidelity level — the property that makes mixed-fidelity
simulation meaningful (same protocol behaviour, different execution cost).
"""

from __future__ import annotations

from itertools import count
from typing import Callable, Dict, Optional, Tuple

from ...obs.flows import _ACTIVE as _FLOWS, env_track
from ..packet import HEADER_BYTES, Packet
from . import costs
from .tcp import TcpConnection

EPHEMERAL_BASE = 49_152


class UdpSocket:
    """A bound UDP socket."""

    def __init__(self, stack: "Stack", port: int,
                 on_dgram: Optional[Callable[[Packet], None]] = None) -> None:
        self.stack = stack
        self.port = port
        self.on_dgram = on_dgram
        self.tx_dgrams = 0
        self.rx_dgrams = 0

    def sendto(self, dst: int, dst_port: int, nbytes: int,
               payload=None, ect: bool = False,
               flow: Optional[int] = None) -> Packet:
        """Send one datagram of ``nbytes`` application payload.

        ``flow`` is the causal-tracing hook: ``None`` (the default) marks a
        flow *origin* — when tracing is active a fresh id is allocated (and
        kept 1-in-N per the sampling divisor).  A nonzero value continues
        an existing traced flow (e.g. a server replying to a traced
        request); ``0`` continues an *untraced* one, so replies inherit the
        request's sampling decision instead of originating a new flow.
        """
        stack = self.stack
        env = stack.env
        env.charge(costs.UDP_TX_INSTR
                   + int(costs.COPY_INSTR_PER_BYTE * nbytes))
        pkt = Packet.alloc(
            stack.addr, dst, nbytes + HEADER_BYTES,
            "udp", self.port, dst_port,
            payload=payload, ect=ect, create_ts=env.now,
        )
        rec = _FLOWS[0]
        if rec is not None and flow != 0:
            if flow:
                pkt.flow = flow
                kind = "send"
            else:
                # Sampling decides at the origin: an unsampled flow is
                # never tagged, so every downstream site stays on its
                # flow==0 fast branch.
                flow = rec.new_flow(stack.addr)
                kind = "origin"
                if rec.sampled(flow):
                    pkt.flow = flow
                else:
                    flow = 0
            if flow:
                track, at = env_track(env)
                rec.hop(flow, kind, track, env.now, at=at)
        self.tx_dgrams += 1
        env.tx(pkt)
        return pkt

    def close(self) -> None:
        """Unbind this socket's port."""
        self.stack._udp.pop(self.port, None)

    def _deliver(self, pkt: Packet) -> None:
        self.rx_dgrams += 1
        payload_bytes = pkt.size_bytes - HEADER_BYTES
        if payload_bytes < 0:
            payload_bytes = 0
        self.stack.env.charge(costs.UDP_RX_INSTR
                              + int(costs.COPY_INSTR_PER_BYTE * payload_bytes))
        if self.on_dgram is not None:
            self.on_dgram(pkt)


class Stack:
    """Per-host transport stack: UDP sockets and TCP connections."""

    def __init__(self, env, addr: int) -> None:
        self.env = env
        self.addr = addr
        self._udp: Dict[int, UdpSocket] = {}
        self._tcp_listeners: Dict[int, Tuple[Callable, str]] = {}
        self._tcp: Dict[Tuple[int, int, int], TcpConnection] = {}
        self._ephemeral = count(EPHEMERAL_BASE)
        self.rx_packets = 0
        self.rx_no_handler = 0
        #: :class:`~repro.netsim.fluid.FluidDomain` when the fluid fidelity
        #: tier is installed on this host's partition (``None`` otherwise).
        self.fluid_ctl = None

    # -- UDP -----------------------------------------------------------------

    def udp_socket(self, port: Optional[int] = None,
                   on_dgram: Optional[Callable[[Packet], None]] = None) -> UdpSocket:
        """Bind a UDP socket (ephemeral port when ``port`` is None)."""
        if port is None:
            port = next(self._ephemeral)
        if port in self._udp:
            raise ValueError(f"UDP port {port} already bound on {self.addr}")
        sock = UdpSocket(self, port, on_dgram)
        self._udp[port] = sock
        return sock

    # -- TCP -----------------------------------------------------------------

    def tcp_listen(self, port: int, on_conn: Callable[[TcpConnection], None],
                   variant: str = "newreno") -> None:
        """Accept connections on ``port``; ``on_conn`` gets each new one."""
        if port in self._tcp_listeners:
            raise ValueError(f"TCP port {port} already listening on {self.addr}")
        self._tcp_listeners[port] = (on_conn, variant)

    def tcp_connect(self, dst: int, dst_port: int, variant: str = "newreno",
                    on_connected: Optional[Callable[[TcpConnection], None]] = None,
                    ) -> TcpConnection:
        """Open a client connection (three-way handshake starts now)."""
        local_port = next(self._ephemeral)
        conn = TcpConnection(
            self, local_port=local_port, peer=dst, peer_port=dst_port,
            variant=variant, is_client=True, on_connected=on_connected,
        )
        self._tcp[(dst, dst_port, local_port)] = conn
        conn.open()
        return conn

    def _register_accepted(self, conn: TcpConnection) -> None:
        self._tcp[(conn.peer, conn.peer_port, conn.local_port)] = conn

    def close_conn(self, conn: TcpConnection) -> None:
        """Remove a connection from the demux table."""
        self._tcp.pop((conn.peer, conn.peer_port, conn.local_port), None)

    # -- demux -----------------------------------------------------------------

    def handle_packet(self, pkt: Packet) -> None:
        """Entry point for packets arriving from the network interface."""
        self.rx_packets += 1
        rec = _FLOWS[0]
        if rec is not None and pkt.flow:
            env = self.env
            track, at = env_track(env)
            rec.hop(pkt.flow, "deliver", track, env.now, at=at)
        if pkt.proto == "tcp":
            self._handle_tcp(pkt)
            return
        sock = self._udp.get(pkt.dst_port)
        if sock is None:
            self.rx_no_handler += 1
            return
        sock._deliver(pkt)

    def _handle_tcp(self, pkt: Packet) -> None:
        key = (pkt.src, pkt.src_port, pkt.dst_port)
        conn = self._tcp.get(key)
        if conn is not None:
            conn.on_packet(pkt)
            return
        if "S" in pkt.flags and "A" not in pkt.flags:
            listener = self._tcp_listeners.get(pkt.dst_port)
            if listener is None:
                self.rx_no_handler += 1
                return
            on_conn, variant = listener
            conn = TcpConnection(
                self, local_port=pkt.dst_port, peer=pkt.src,
                peer_port=pkt.src_port, variant=variant, is_client=False,
            )
            self._register_accepted(conn)
            conn.on_packet(pkt)
            on_conn(conn)
            return
        self.rx_no_handler += 1
