"""Transport protocols shared by every host fidelity."""

from .stack import Stack, UdpSocket
from .tcp import TcpConnection

__all__ = ["Stack", "UdpSocket", "TcpConnection"]
