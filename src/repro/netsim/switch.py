"""Output-queued switches with pluggable in-network processing pipelines.

The forwarding table maps destination address to one or more output ports
(multiple ports = ECMP; the flow 5-tuple hash picks one deterministically).
A pipeline hook sees every packet before forwarding and may consume it,
rewrite it, or emit replies — this is how NetCache, Pegasus, and the PTP
transparent clock are implemented (:mod:`repro.netsim.inp`,
:mod:`repro.netsim.ptp_tc`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, TYPE_CHECKING

from ..kernel.simtime import NS
from .link import Port
from .node import Node
from .packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .network import NetworkSim

#: Default switch forwarding latency (lookup + crossbar).
DEFAULT_PROC_DELAY_PS = 300 * NS


class Pipeline(Protocol):
    """In-network processing hook."""

    def process(self, switch: "Switch", pkt: Packet,
                in_port: Optional[Port]) -> Optional[Iterable[Packet]]:
        """Handle a packet; return packets to forward (or ``None`` if consumed).

        Returning ``[pkt]`` unchanged forwards normally.
        """


class Switch(Node):
    """An output-queued L2/L3 switch."""

    def __init__(self, net: "NetworkSim", name: str,
                 proc_delay_ps: int = DEFAULT_PROC_DELAY_PS,
                 pipeline: Optional[Pipeline] = None) -> None:
        super().__init__(net, name)
        self.proc_delay_ps = proc_delay_ps
        self.pipeline = pipeline
        #: destination address -> candidate output ports (ECMP set)
        self.fib: Dict[int, List[Port]] = {}
        #: lazily-filled ``dst -> port`` cache for single-port FIB entries;
        #: ECMP destinations are never cached (the per-packet flow hash must
        #: run).  Invalidated by :meth:`add_route` / :meth:`invalidate_routes`.
        self._route_cache: Dict[int, Port] = {}
        #: single-entry ``(dst, port)`` memo for the batched fast path —
        #: back-to-back runs overwhelmingly share a destination, so the
        #: common case is one tuple compare instead of a dict probe.
        self._fwd_memo: Optional[tuple] = None
        self.rx_packets = 0
        self.tx_packets = 0
        self.no_route_drops = 0

    # -- configuration -------------------------------------------------------

    def add_route(self, dst_addr: int, port: Port) -> None:
        """Add a (possibly ECMP) next-hop port for a destination."""
        self.fib.setdefault(dst_addr, [])
        if port not in self.fib[dst_addr]:
            self.fib[dst_addr].append(port)
        self._route_cache.pop(dst_addr, None)
        self._fwd_memo = None

    def invalidate_routes(self) -> None:
        """Drop all cached route decisions (topology changed).

        Flushes both the per-destination cache and the batched fast path's
        last-forward memo, so a mid-run route change can never forward a
        stale-batched run of packets out the old port.
        """
        self._route_cache.clear()
        self._fwd_memo = None

    # -- datapath --------------------------------------------------------------

    def receive(self, pkt: Packet, port: Optional[Port]) -> None:
        """Ingress: note arrival, run the pipeline after the lookup delay."""
        self.rx_packets += 1
        net = self.net
        now = net.now
        pkt.arrival_ts = now
        if self.proc_delay_ps > 0:
            # direct queue insert; _schedule_at is read through ``net`` so
            # the fast-mode queue swap stays visible
            net._schedule_at(net, now + self.proc_delay_ps, self._process,
                             pkt, port)
        else:
            self._process(pkt, port)

    def _process(self, pkt: Packet, in_port: Optional[Port]) -> None:
        if self.pipeline is not None:
            out = self.pipeline.process(self, pkt, in_port)
            if out is None:
                return
            for p in out:
                self.forward(p)
        else:
            self.forward(pkt)

    def forward(self, pkt: Packet) -> None:
        """Send a packet out the FIB-selected port for its destination."""
        dst = pkt.dst
        memo = self._fwd_memo
        if memo is not None and memo[0] == dst:
            self.tx_packets += 1
            memo[1].transmit(pkt)
            return
        port = self._route_cache.get(dst)
        if port is None:
            ports = self.fib.get(dst)
            if not ports:
                self.no_route_drops += 1
                return
            if len(ports) == 1:
                port = ports[0]
                self._route_cache[dst] = port
            else:
                # ECMP: the per-packet flow hash must run; never memoized
                port = ports[hash(pkt.flow_key()) % len(ports)]
                self.tx_packets += 1
                port.send(pkt)
                return
        if port.egress is not None:
            # memoize the egress direction itself: repeat forwards to the
            # same destination skip both the dict probe and the Port hop
            self._fwd_memo = (dst, port.egress)
        self.tx_packets += 1
        port.send(pkt)

    def send_from_switch(self, pkt: Packet) -> None:
        """Emit a switch-originated packet (e.g. a NetCache cache hit reply)."""
        pkt.arrival_ts = self.net.now
        self.forward(pkt)
