"""Packet-level network simulator (the reproduction\'s ns-3/OMNeT++)."""

from .network import NetworkSim
from .packet import Packet
from .topology import (TopoSpec, datacenter, dumbbell, fat_tree, instantiate,
                       single_switch_rack)
from .partition import instantiate_partitioned

__all__ = ["NetworkSim", "Packet", "TopoSpec", "instantiate",
           "instantiate_partitioned", "dumbbell", "fat_tree",
           "single_switch_rack", "datacenter"]
