"""Pegasus switch data plane: an in-network coherence directory.

Pegasus (Li et al., OSDI'20) keeps a directory in the ToR switch mapping
each (hot) key to the set of servers holding its latest version.  Writes
are forwarded to the *least loaded* server and the directory is updated to
that single owner; reads are load-balanced across the current replica set.
Unlike NetCache, write load therefore spreads over all servers — which is
why Pegasus wins under write-heavy skewed workloads once server software
cost is modeled.

Load tracking mirrors the hardware design: the switch counts in-flight
requests per server (incremented when a request is forwarded, decremented
when the matching reply passes back through the switch).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..packet import Packet
from ..switch import Switch
from ..apps.kvproto import OP_READ, OP_WRITE, KvReply, KvRequest, home_server


class PegasusPipeline:
    """Switch pipeline implementing the Pegasus coherence directory."""

    def __init__(self, switch: Switch, server_addrs: List[int]) -> None:
        if not server_addrs:
            raise ValueError("need at least one server")
        self.switch = switch
        self.server_addrs = list(server_addrs)
        #: key -> replica set holding the latest version
        self.directory: Dict[int, Set[int]] = {}
        #: server addr -> in-flight requests (directory load estimate)
        self.load: Dict[int, int] = {a: 0 for a in server_addrs}
        self.redirected_writes = 0
        self.redirected_reads = 0

    # Pipeline interface ----------------------------------------------------

    def process(self, switch: Switch, pkt: Packet,
                in_port) -> Optional[Iterable[Packet]]:
        """Pipeline hook: steer requests via the directory and load table."""
        payload = pkt.payload
        if isinstance(payload, KvRequest):
            self._route_request(pkt, payload)
        elif isinstance(payload, KvReply):
            if payload.served_by in self.load:
                self.load[payload.served_by] = max(
                    0, self.load[payload.served_by] - 1)
        return (pkt,)

    def _route_request(self, pkt: Packet, req: KvRequest) -> None:
        if req.op == OP_WRITE:
            target = self._least_loaded(self.server_addrs)
            if target != pkt.dst:
                self.redirected_writes += 1
            pkt.dst = target
            self.directory[req.key] = {target}
        else:
            replicas = self.directory.get(req.key)
            if replicas:
                target = self._least_loaded(sorted(replicas))
            else:
                target = home_server(req.key, self.server_addrs)
            if target != pkt.dst:
                self.redirected_reads += 1
            pkt.dst = target
        self.load[pkt.dst] = self.load.get(pkt.dst, 0) + 1

    def _least_loaded(self, candidates) -> int:
        return min(candidates, key=lambda a: (self.load.get(a, 0), a))
