"""In-network processing pipelines (programmable switch data planes)."""

from .netcache import NetCachePipeline
from .pegasus import PegasusPipeline

__all__ = ["NetCachePipeline", "PegasusPipeline"]
