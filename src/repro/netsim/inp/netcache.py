"""NetCache switch data plane: an in-switch cache for hot keys.

NetCache (Jin et al., SOSP'17) caches the hottest key-value items in the
ToR switch.  Reads of cached keys are answered directly by the switch;
writes always go to the key's single home server and invalidate the cache
entry; the cache is (re)populated from read replies of keys the counting
stage has identified as hot.

The consequence the case study exposes: the cache absorbs hot *reads*, but
all writes to a hot key still land on one home server — under a 70%-write
Zipf-1.8 workload, that server's software becomes the system bottleneck,
visible only in end-to-end (or mixed-fidelity) simulation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ...kernel.simtime import US
from ..packet import HEADER_BYTES, Packet
from ..switch import Switch
from ..apps.kvproto import (OP_READ, OP_WRITE, SERVED_BY_SWITCH, KvReply,
                            KvRequest, WRITE_REPLY_BYTES)


class NetCachePipeline:
    """Switch pipeline implementing the NetCache cache + query statistics."""

    def __init__(self, switch: Switch, cache_slots: int = 64,
                 hot_threshold: int = 8,
                 invalidate_on_write: bool = False,
                 write_leader: Optional[int] = None) -> None:
        self.switch = switch
        self.cache_slots = cache_slots
        self.hot_threshold = hot_threshold
        #: NetCache cannot load-balance writes: they serialize at a single
        #: responsible replica.  When set, the pipeline directs every write
        #: to this server address (the replicated store's write leader).
        self.write_leader = write_leader
        #: When True, a write request immediately invalidates the cached
        #: entry and reads miss until the write reply refreshes it
        #: (strict per-key linearizability).  The default matches the
        #: common data-plane behaviour of serving the current cached value
        #: until the write reply installs the new one.
        self.invalidate_on_write = invalidate_on_write
        #: key -> value size (a cached item)
        self.cache: Dict[int, int] = {}
        #: query-frequency counting stage (count-min stand-in)
        self.counts: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # Pipeline interface -----------------------------------------------------

    def process(self, switch: Switch, pkt: Packet,
                in_port) -> Optional[Iterable[Packet]]:
        """Pipeline hook: serve cache hits, steer writes, learn hot keys."""
        payload = pkt.payload
        if isinstance(payload, KvRequest):
            return self._on_request(pkt, payload)
        if isinstance(payload, KvReply):
            self._maybe_admit(payload)
        return (pkt,)

    def _on_request(self, pkt: Packet, req: KvRequest
                    ) -> Optional[Iterable[Packet]]:
        if req.op == OP_READ:
            self.counts[req.key] = self.counts.get(req.key, 0) + 1
            value_bytes = self.cache.get(req.key)
            if value_bytes is not None:
                self.hits += 1
                reply = KvReply(op=OP_READ, key=req.key, req_id=req.req_id,
                                served_by=SERVED_BY_SWITCH,
                                value_bytes=value_bytes)
                out = Packet(
                    src=pkt.dst, dst=pkt.src,
                    size_bytes=value_bytes + HEADER_BYTES,
                    proto="udp", src_port=pkt.dst_port, dst_port=pkt.src_port,
                    payload=reply,
                )
                self.switch.send_from_switch(out)
                return None
            self.misses += 1
        elif req.op == OP_WRITE:
            if req.key in self.cache:
                if self.invalidate_on_write:
                    del self.cache[req.key]
                self.invalidations += 1
            if self.write_leader is not None:
                pkt.dst = self.write_leader
        return (pkt,)

    def _maybe_admit(self, reply: KvReply) -> None:
        # Replies (re)populate the cache: read replies admit hot keys, and
        # write replies refresh the invalidated entry with the new value
        # (writes serialize through the home server, so the reply carries
        # the latest version — NetCache's write-through coherence).
        if reply.key in self.cache:
            self.cache[reply.key] = reply.value_bytes
            return
        if self.counts.get(reply.key, 0) < self.hot_threshold:
            return
        if len(self.cache) >= self.cache_slots:
            coldest = min(self.cache, key=lambda k: self.counts.get(k, 0))
            if self.counts.get(coldest, 0) >= self.counts.get(reply.key, 0):
                return
            del self.cache[coldest]
        self.cache[reply.key] = reply.value_bytes
