"""Egress queue disciplines for links and switch ports.

The default is a byte-capacity drop-tail FIFO with optional DCTCP-style ECN
marking: when the instantaneous queue occupancy at enqueue time is at or
above the marking threshold ``ecn_threshold_pkts``, the CE codepoint is set
on ECN-capable packets.  This is the knob swept in the congestion-control
case study (Fig. 6).  A classic RED variant (probabilistic marking/dropping
on the EWMA queue length) is also provided, as in ns-3.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Optional

from .packet import Packet


@dataclass
class QueueStats:
    """Counters every queue keeps; read by tests and experiments."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    ecn_marked: int = 0
    max_depth_pkts: int = 0
    max_depth_bytes: int = 0


class DropTailQueue:
    """Byte-bounded FIFO with optional ECN marking at enqueue.

    Parameters
    ----------
    capacity_bytes:
        Maximum total queued bytes; further packets are dropped.
    ecn_threshold_pkts:
        DCTCP marking threshold K in packets, or ``None`` to disable
        marking.  Marking is applied at enqueue time against the
        instantaneous queue depth, matching DCTCP's specification.
    """

    def __init__(self, capacity_bytes: int = 512 * 1024,
                 ecn_threshold_pkts: Optional[int] = None) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.ecn_threshold_pkts = ecn_threshold_pkts
        self._q: deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._q)

    @property
    def bytes_queued(self) -> int:
        """Current total queued bytes."""
        return self._bytes

    def enqueue(self, pkt: Packet) -> bool:
        """Add a packet; returns ``False`` (and counts a drop) when full."""
        stats = self.stats
        nbytes = self._bytes + pkt.size_bytes
        if nbytes > self.capacity_bytes:
            stats.dropped += 1
            return False
        q = self._q
        if (self.ecn_threshold_pkts is not None and pkt.ect
                and len(q) >= self.ecn_threshold_pkts):
            pkt.ce = True
            stats.ecn_marked += 1
        q.append(pkt)
        self._bytes = nbytes
        stats.enqueued += 1
        depth = len(q)
        if depth > stats.max_depth_pkts:
            stats.max_depth_pkts = depth
        if nbytes > stats.max_depth_bytes:
            stats.max_depth_bytes = nbytes
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head packet, or ``None`` if empty."""
        if not self._q:
            return None
        pkt = self._q.popleft()
        self._bytes -= pkt.size_bytes
        self.stats.dequeued += 1
        return pkt

    def peek(self) -> Optional[Packet]:
        """The head packet without removing it."""
        return self._q[0] if self._q else None

    def iter_queued(self):
        """Iterate the queued packets head-first without removing them.

        Used by the batched link drain to compute the full serialization
        schedule of a busy run in one pass.  The caller must not enqueue
        or dequeue while iterating.
        """
        return iter(self._q)


class RedQueue(DropTailQueue):
    """Random Early Detection on the EWMA queue depth (Floyd/Jacobson).

    Between ``min_th`` and ``max_th`` average packets, arriving packets are
    marked (ECN-capable) or dropped with probability rising linearly to
    ``max_p``; above ``max_th`` every packet is marked/dropped.  The EWMA
    weight follows ns-3's default (1/512 per packet arrival).
    """

    def __init__(self, capacity_bytes: int = 512 * 1024,
                 min_th: float = 5.0, max_th: float = 15.0,
                 max_p: float = 0.1, weight: float = 1.0 / 512.0,
                 ecn: bool = True, rng: Optional[random.Random] = None) -> None:
        super().__init__(capacity_bytes=capacity_bytes,
                         ecn_threshold_pkts=None)
        if not 0 < min_th < max_th:
            raise ValueError("need 0 < min_th < max_th")
        self.min_th = min_th
        self.max_th = max_th
        self.max_p = max_p
        self.weight = weight
        self.ecn = ecn
        self._rng = rng or random.Random(0)
        self.avg = 0.0
        self.red_marked = 0
        self.red_dropped = 0

    def enqueue(self, pkt: Packet) -> bool:
        """RED admission: mark/drop probabilistically on the EWMA depth."""
        self.avg += self.weight * (len(self) - self.avg)
        if self.avg >= self.max_th:
            action = True
        elif self.avg <= self.min_th:
            action = False
        else:
            p = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
            action = self._rng.random() < p
        if action:
            if self.ecn and pkt.ect:
                pkt.ce = True
                self.red_marked += 1
                self.stats.ecn_marked += 1
            else:
                self.red_dropped += 1
                self.stats.dropped += 1
                return False
        return super().enqueue(pkt)
