"""Trunk channels: multiplex many logical links over one synchronized channel.

When a decomposed simulator partition has several links crossing to the same
peer partition, naively giving each link its own channel multiplies the
synchronization cost.  A :class:`TrunkEnd` instead carries all of them over a
single synchronized channel, tagging each message with a sub-channel id for
demultiplexing at the receiver (paper §3.2.1, "trunk adapter").

Usage: create a ``TrunkEnd`` per side, :func:`~repro.channels.channel.connect`
them, then allocate matching :meth:`TrunkEnd.port` objects (same ``sub_id`` on
both sides) for each logical link.  Ports expose ``send`` and a received-
message handler, so higher layers can treat a port like a private link.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .channel import ChannelEnd
from .messages import Msg, TrunkMsg
from ..obs.flows import _ACTIVE as _FLOWS


class TrunkPort:
    """One logical sub-link of a trunk channel."""

    def __init__(self, trunk: "TrunkEnd", sub_id: int) -> None:
        self.trunk = trunk
        self.sub_id = sub_id
        self.handler: Optional[Callable[[Msg], None]] = None
        self.tx_msgs = 0
        self.rx_msgs = 0

    def send(self, msg: Msg, now: int) -> None:
        """Send ``msg`` over this logical link."""
        self.tx_msgs += 1
        tm = TrunkMsg(subchannel=self.sub_id, inner=msg)
        if msg.flow:
            # mux: the wrapper inherits the inner provenance so trunk-level
            # records (and the wire frame) stay attributable to the flow
            tm.flow = msg.flow
            tm.hop = msg.hop
        self.trunk.send(tm, now)

    def on_receive(self, handler: Callable[[Msg], None]) -> "TrunkPort":
        """Register the callback invoked for each delivered inner message."""
        self.handler = handler
        return self

    def _deliver(self, inner: Msg) -> None:
        self.rx_msgs += 1
        if self.handler is None:
            raise RuntimeError(
                f"trunk {self.trunk.name} port {self.sub_id}: message but no handler"
            )
        self.handler(inner)


class TrunkEnd(ChannelEnd):
    """Channel end that carries tagged sub-channel messages.

    The owning component should register :meth:`dispatch` as this end's
    message handler; it demultiplexes to the per-port handlers.
    """

    def __init__(self, name: str, latency: int, sync_interval: Optional[int] = None) -> None:
        super().__init__(name, latency, sync_interval)
        self._ports: Dict[int, TrunkPort] = {}

    def port(self, sub_id: int) -> TrunkPort:
        """Allocate (or fetch) the logical sub-link with id ``sub_id``."""
        if sub_id not in self._ports:
            self._ports[sub_id] = TrunkPort(self, sub_id)
        return self._ports[sub_id]

    @property
    def num_ports(self) -> int:
        """How many logical sub-links have been allocated."""
        return len(self._ports)

    def dispatch(self, msg: Msg) -> None:
        """Demultiplex a received :class:`TrunkMsg` to its port handler."""
        if not isinstance(msg, TrunkMsg):
            raise TypeError(f"trunk {self.name}: unexpected message {type(msg).__name__}")
        port = self._ports.get(msg.subchannel)
        if port is None:
            raise RuntimeError(
                f"trunk {self.name}: message for unknown sub-channel {msg.subchannel}"
            )
        inner = msg.inner
        inner.stamp = msg.stamp
        rec = _FLOWS[0]
        if rec is not None and inner.flow:
            owner = self.owner
            rec.hop(inner.flow, "demux",
                    owner.name if owner is not None else "?", msg.stamp,
                    at=self.name)
        port._deliver(inner)
