"""SplitSim channels: synchronized message links between simulators."""

from .channel import ChannelEnd, FifoQueue, connect
from .messages import (DmaCompletionMsg, DmaReadMsg, DmaWriteMsg, EthMsg,
                       InterruptMsg, MemReadMsg, MemRespMsg, MemWriteMsg,
                       MmioMsg, MmioRespMsg, Msg, RawMsg, SyncMsg, TrunkMsg)
from .trunk import TrunkEnd, TrunkPort

__all__ = ["ChannelEnd", "FifoQueue", "connect", "TrunkEnd", "TrunkPort",
           "Msg", "SyncMsg", "RawMsg", "EthMsg", "TrunkMsg",
           "MmioMsg", "MmioRespMsg", "DmaReadMsg", "DmaWriteMsg",
           "DmaCompletionMsg", "InterruptMsg",
           "MemReadMsg", "MemWriteMsg", "MemRespMsg"]
