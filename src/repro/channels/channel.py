"""SplitSim channels: synchronized, latency-modeled message links.

A channel connects two component simulators with a pair of directed queues.
The synchronization protocol is SimBricks-style conservative lookahead:

* Every message is stamped with its *delivery* time (sender time + channel
  latency).  Stamps on a directed queue are non-decreasing.
* A receiver may only advance its local clock strictly below its **input
  horizon**: the largest stamp it has seen on each input queue (minimum
  across queues).
* A sender that advances its clock without sending data must periodically
  send :class:`~repro.channels.messages.SyncMsg` markers so its peer's
  horizon keeps growing.  Positive latency on every channel guarantees
  deadlock freedom: each sync round grows horizons by at least the channel
  latency.

Two transports implement the directed queues:

* :class:`FifoQueue` — an in-process deque, used by the cooperative
  coordinator (both its strict-sync and fast modes).
* the shared-memory ring in :mod:`repro.parallel.shm_ring` — used when each
  component runs as a real OS process.

Channel ends also maintain the profiler's raw counters (messages and cycles
spent waiting / sending / receiving); see :mod:`repro.profiler`.
"""

from __future__ import annotations

import time
from collections import deque
from itertools import count
from typing import Callable, Iterable, Optional, TYPE_CHECKING

from .messages import Msg, SyncMsg, wire_size_of
from ..kernel.simtime import TIME_INFINITY
from ..obs.flows import _ACTIVE as _FLOWS

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.component import Component

#: Process-global send order for data messages on synchronized ends.  A
#: receiver with several input channels can see equal delivery stamps from
#: different channels in one poll round; ``Msg.seq`` lets it dispatch them in
#: send order — the order the fast-mode shared queue would have used — instead
#: of channel attach order.
_send_seq = count(1)

#: Batched fast path over batch-capable transports (the shm rings).  Shared
#: with forked children: mutate via :func:`set_transport_batching` *before*
#: the runner forks.  The in-process ``FifoQueue`` transport is never
#: batched, so the cooperative coordinator's behavior is unaffected.
_BATCHING = [True]


def set_transport_batching(enabled: bool) -> None:
    """Enable/disable the batched shm fast path for subsequently wired ends."""
    _BATCHING[0] = bool(enabled)


def transport_batching() -> bool:
    """Whether newly wired batch-capable transports use the batched path."""
    return _BATCHING[0]


class FifoQueue:
    """In-process directed message queue (single producer, single consumer)."""

    def __init__(self) -> None:
        self._q: deque[Msg] = deque()

    def push(self, msg: Msg) -> bool:
        """Append a message (always succeeds in-process)."""
        self._q.append(msg)
        return True

    def pop(self) -> Optional[Msg]:
        """Remove and return the oldest message, or None."""
        if not self._q:
            return None
        return self._q.popleft()

    def peek_stamp(self) -> Optional[int]:
        """Stamp of the oldest message without consuming it."""
        if not self._q:
            return None
        return self._q[0].stamp

    def __len__(self) -> int:
        return len(self._q)


class ChannelEnd:
    """One endpoint of a SplitSim channel, owned by a component simulator.

    The owning component calls :meth:`send` from its event handlers,
    :meth:`poll` to drain incoming messages, :meth:`horizon` to bound how far
    it may advance, and :meth:`maybe_sync` after advancing to keep its peer
    unblocked.
    """

    def __init__(self, name: str, latency: int, sync_interval: Optional[int] = None) -> None:
        if latency <= 0:
            raise ValueError("channel latency must be positive (deadlock freedom)")
        self.name = name
        self.latency = latency
        #: How stale the outgoing promise may become before a sync is due.
        self.sync_interval = sync_interval if sync_interval is not None else latency
        if self.sync_interval <= 0:
            raise ValueError("sync interval must be positive")

        self.owner: Optional["Component"] = None
        self.peer_name: str = ""
        #: peer *component* name (set when channels are wired; used for
        #: work-recorder message attribution and profiler edges)
        self.peer_comp_name: str = ""
        self.out_q = None  # type: ignore[assignment]
        self.in_q = None  # type: ignore[assignment]

        #: Whether the sync protocol is active on this end.  The coordinator's
        #: fast mode disables it (components never block) while preserving
        #: message latency semantics.
        self.synchronized = True

        # Sync state.
        self._out_last_stamp = -1
        self._in_horizon = 0

        # Batched-transport state (active only over batch-capable queues,
        # i.e. the shm rings; see :meth:`wire`).
        self._out_batched = False
        self._in_batched = False
        self._out_batch: Optional[list] = None
        #: promise to piggyback on the next flushed data frame
        self._flush_promise = 0
        #: largest promise the peer has definitely received
        self._promise_published = -1
        #: adaptive idle-sync threshold: promise increments below it are
        #: deferred until the next flush-on-block; backs off toward the
        #: channel latency while no data flows, resets on every data send
        self._sync_threshold = self.sync_interval
        #: pooled SyncMsg reused for every emitted marker on batched ends
        #: (the ring encodes at flush time, so mutating it later is safe)
        self._pool_sync: Optional[SyncMsg] = None

        # Profiler raw counters (monotonic totals).
        self.tx_msgs = 0
        self.rx_msgs = 0
        self.tx_syncs = 0
        self.rx_syncs = 0
        self.tx_bytes = 0
        self.wait_polls = 0  # polls made while blocked on this end
        self.wait_cycles = 0  # host cycles (real or modeled) blocked
        self.tx_cycles = 0
        self.rx_cycles = 0

    # -- wiring -----------------------------------------------------------

    def wire(self, out_q, in_q, peer_name: str) -> None:
        """Attach transport queues; called by :func:`connect` or the runner."""
        self.out_q = out_q
        self.in_q = in_q
        self.peer_name = peer_name
        batching = _BATCHING[0]
        self._out_batched = batching and hasattr(out_q, "send_batch")
        self._in_batched = batching and hasattr(in_q, "recv_batch")
        self._out_batch = [] if self._out_batched else None

    # -- sending ----------------------------------------------------------

    def send(self, msg: Msg, now: int) -> None:
        """Send a data message; it is delivered ``latency`` later at the peer."""
        stamp = now + self.latency
        if stamp < self._out_last_stamp:
            raise AssertionError(
                f"{self.name}: non-monotonic stamp {stamp} after {self._out_last_stamp}"
            )
        if self.out_q is None:
            raise RuntimeError(f"channel end {self.name} is not wired")
        msg.stamp = stamp
        if self.synchronized:
            # fast mode (synchronized=False) orders deliveries by its shared
            # queue and skips the counter bump on its per-message hot path
            msg.seq = next(_send_seq)
        self._out_last_stamp = stamp
        rec = _FLOWS[0]
        if rec is not None and msg.flow:
            msg.hop = rec.next_hop(msg.flow)
            owner = self.owner
            rec.hop(msg.flow, "chsend",
                    owner.name if owner is not None else "?", now,
                    at=self.name, hop=msg.hop)
        self.tx_msgs += 1
        self.tx_bytes += wire_size_of(msg)
        batch = self._out_batch
        if batch is None:
            self.out_q.push(msg)
        else:
            batch.append(msg)
            # data is flowing again: sync at the configured granularity
            self._sync_threshold = self.sync_interval

    def maybe_sync(self, commit: int) -> None:
        """Publish a sync promise if the outgoing one has gone stale.

        ``commit`` is the sender's guaranteed lower bound on any future send
        time; the promise covers delivery stamps ``>= commit + latency``.
        On legacy (unbatched) transports this immediately emits a
        :class:`SyncMsg` exactly as before.  On batched transports the
        promise piggybacks on pending data frames when there are any; when
        the sender is idle, small promise increments are deferred (adaptive
        threshold) until either the increment grows past the threshold or
        the owner is about to block (:meth:`flush` with ``blocked=True``).
        """
        if not self.synchronized or self.out_q is None:
            return
        stamp = commit + self.latency
        if stamp <= self._out_last_stamp:
            return
        self._out_last_stamp = stamp
        batch = self._out_batch
        if batch is None:
            self.tx_syncs += 1
            self.out_q.push(SyncMsg(stamp=stamp))
            return
        if batch:
            self._flush_promise = stamp  # rides the data frames for free
            return
        if stamp - self._promise_published < self._sync_threshold:
            return  # deferred; _out_last_stamp remembers the pending promise
        self._emit_sync(stamp)

    def _emit_sync(self, stamp: int) -> None:
        """Queue a pooled sync marker and back off the idle threshold."""
        self.tx_syncs += 1
        msg = self._pool_sync
        if msg is None:
            msg = self._pool_sync = SyncMsg()
        msg.stamp = stamp
        msg.seq = 0
        self._out_batch.append(msg)
        # consecutive idle syncs back off toward the latency bound
        doubled = self._sync_threshold * 2
        self._sync_threshold = doubled if doubled < self.latency else self.latency

    def flush(self, blocked: bool = False,
              deadline: Optional[float] = None) -> None:
        """Publish batched frames (and any deferred promise) to the transport.

        Called by the per-process runner after every advance round; a no-op
        on legacy transports.  ``blocked=True`` means the owner is about to
        block (or has finished): any deferred promise is force-published so
        the peer can keep advancing — this is what keeps the conservative
        protocol deadlock-free under sync coalescing.
        """
        batch = self._out_batch
        if batch is None:
            return
        if not batch:
            if blocked and self._out_last_stamp > self._promise_published:
                self._emit_sync(self._out_last_stamp)
            else:
                return
        promise = self._flush_promise
        sent = self.out_q.send_batch(batch, promise)
        while sent < len(batch):
            # ring full: let the consumer drain, then retry the remainder
            time.sleep(0)
            if deadline is not None and time.perf_counter() > deadline:
                raise TimeoutError(
                    f"{self.name}: peer not draining, flush stuck with "
                    f"{len(batch) - sent} frames pending")
            sent += self.out_q.send_batch(batch[sent:], promise)
        published = batch[-1].stamp
        if promise > published:
            published = promise
        if published > self._promise_published:
            self._promise_published = published
        batch.clear()
        self._flush_promise = 0

    # -- receiving --------------------------------------------------------

    def poll(self) -> Iterable[Msg]:
        """Drain the input queue, returning data messages in stamp order.

        Sync markers only raise the input horizon and are consumed here.
        """
        if self.in_q is None:
            return ()  # not wired (yet): no input
        out = []
        if self._in_batched:
            # one cursor read/store covers the whole drain; piggybacked
            # promises raise the horizon exactly like sync markers do
            hz = self._in_horizon
            for msg, promise in self.in_q.recv_batch():
                if msg.stamp > hz:
                    hz = msg.stamp
                if promise > hz:
                    hz = promise
                if isinstance(msg, SyncMsg):
                    self.rx_syncs += 1
                else:
                    self.rx_msgs += 1
                    out.append(msg)
            self._in_horizon = hz
            return out
        while True:
            msg = self.in_q.pop()
            if msg is None:
                break
            if msg.stamp > self._in_horizon:
                self._in_horizon = msg.stamp
            if isinstance(msg, SyncMsg):
                self.rx_syncs += 1
            else:
                self.rx_msgs += 1
                out.append(msg)
        return out

    def horizon(self) -> int:
        """Largest simulated time this end permits its owner to advance *to*.

        The owner may execute events strictly before this value.
        """
        if not self.synchronized or self.in_q is None:
            return TIME_INFINITY
        return self._in_horizon

    # -- profiler ---------------------------------------------------------

    def note_wait(self, cycles: int) -> None:
        """Record host cycles spent blocked waiting on this end."""
        self.wait_polls += 1
        self.wait_cycles += cycles

    def counters(self) -> dict:
        """Snapshot of the raw profiler counters."""
        return {
            "tx_msgs": self.tx_msgs,
            "rx_msgs": self.rx_msgs,
            "tx_syncs": self.tx_syncs,
            "rx_syncs": self.rx_syncs,
            "tx_bytes": self.tx_bytes,
            "wait_polls": self.wait_polls,
            "wait_cycles": self.wait_cycles,
            "tx_cycles": self.tx_cycles,
            "rx_cycles": self.rx_cycles,
        }

    # -- observability ----------------------------------------------------

    def obs_sample(self, tracer, tid: int, ts_us: float,
                   comp_name: str) -> None:
        """Emit one cumulative counter-track sample of this end.

        The track name encodes the edge (``chan|comp|end|peer``) so that
        ``splitsim-inspect`` can reconstruct per-edge wait data — and the
        WTPG — from the trace alone.  Called from the strict coordinator's
        sampling hook and from multiprocess children at heartbeat times;
        never from the per-message hot path.
        """
        tracer.counter(
            tid, "channel",
            f"chan|{comp_name}|{self.name}|{self.peer_comp_name or self.peer_name}",
            ts_us,
            {"tx_msgs": self.tx_msgs, "rx_msgs": self.rx_msgs,
             "tx_syncs": self.tx_syncs, "rx_syncs": self.rx_syncs,
             "wait_cycles": self.wait_cycles, "wait_polls": self.wait_polls,
             "tx_cycles": self.tx_cycles, "rx_cycles": self.rx_cycles})


def connect(end_a: ChannelEnd, end_b: ChannelEnd,
            queue_factory: Callable[[], object] = FifoQueue) -> None:
    """Wire two channel ends together with a fresh pair of directed queues."""
    q_ab = queue_factory()
    q_ba = queue_factory()
    end_a.wire(out_q=q_ab, in_q=q_ba, peer_name=end_b.name)
    end_b.wire(out_q=q_ba, in_q=q_ab, peer_name=end_a.name)
