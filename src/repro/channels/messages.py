"""Message types carried over SplitSim channels.

Channels are typed by the messages they carry, mirroring the SimBricks
protocol families:

* **Ethernet** (`EthMsg`): frames between NICs, switches, and network
  simulator partitions.
* **PCI** (`DmaReadMsg`/`DmaWriteMsg`/`DmaCompletionMsg`/`MmioMsg`/
  `InterruptMsg`): host <-> NIC device interface.
* **Memory** (`MemReadMsg`/`MemWriteMsg`/`MemRespMsg`): gem5-style packetized
  memory requests, used to decompose multi-core host simulations.
* **Sync** (`SyncMsg`): pure synchronization, no payload.
* **Trunk** (`TrunkMsg`): a tagged wrapper multiplexing several logical
  sub-channels over one synchronized channel.

Every message carries ``stamp``: the simulated time at which it takes effect
at the *receiver* (sender's send time plus channel latency).  Stamps on one
directed queue are non-decreasing; this monotonicity is what the conservative
synchronization protocol relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class Msg:
    """Base class for all channel messages."""

    #: Cached :meth:`wire_size` for fixed-size message classes (the common
    #: case on the per-send hot path); ``None`` on classes whose size
    #: depends on the payload.  Mirrors the precomputed ``Packet.size_bits``
    #: treatment: :func:`wire_size_of` reads the class constant and only
    #: calls the method for variable-size messages.
    WIRE_SIZE = 32

    stamp: int = 0
    #: Global send order (assigned by :meth:`ChannelEnd.send` on synchronized
    #: ends, 0 otherwise).  Breaks same-stamp delivery ties across *different*
    #: channels of one receiver so the strict sync protocol dispatches them in
    #: the same order as the fast-mode oracle.
    seq: int = 0
    #: Causal flow id (``repro.obs.flows``): nonzero when the message belongs
    #: to a traced end-to-end flow.  Assigned at the message origin (app send,
    #: TCP segment birth) and propagated across every channel crossing — and
    #: through the struct wire codec — so per-hop records from different
    #: processes can be stitched back into one flow.  ``0`` = untagged; the
    #: field never influences simulated behaviour.
    flow: int = 0
    #: Channel-crossing index of this message within its flow (provenance
    #: ordering hint for the waterfall view).  Like ``flow``, purely
    #: observational.
    hop: int = 0

    def wire_size(self) -> int:
        """Estimated serialized bytes (shm slot sizing + transfer cost)."""
        return 32


def wire_size_of(msg: "Msg") -> int:
    """Wire size of ``msg`` without recomputation for fixed-size classes."""
    ws = msg.WIRE_SIZE
    return ws if ws is not None else msg.wire_size()


@dataclass
class SyncMsg(Msg):
    """Pure synchronization marker: promises no earlier message will follow."""

    WIRE_SIZE = 8

    def wire_size(self) -> int:  # noqa: D102 - documented on the base class
        return 8


@dataclass
class EthMsg(Msg):
    """An Ethernet frame, carrying an opaque packet object."""

    WIRE_SIZE = None  # payload-dependent

    packet: Any = None

    def wire_size(self) -> int:
        size = getattr(self.packet, "size_bytes", 64)
        return 32 + int(size)


@dataclass
class MmioMsg(Msg):
    """Host-initiated register read/write to the device (BAR access)."""

    addr: int = 0
    value: int = 0
    is_write: bool = True
    req_id: int = 0


@dataclass
class MmioRespMsg(Msg):
    """Completion of an MMIO read."""

    value: int = 0
    req_id: int = 0


@dataclass
class DmaReadMsg(Msg):
    """Device-initiated DMA read of host memory."""

    addr: int = 0
    length: int = 0
    req_id: int = 0


@dataclass
class DmaWriteMsg(Msg):
    """Device-initiated DMA write into host memory."""

    WIRE_SIZE = None  # payload-dependent

    addr: int = 0
    data: Any = None
    length: int = 0
    req_id: int = 0

    def wire_size(self) -> int:
        return 40 + self.length


@dataclass
class DmaCompletionMsg(Msg):
    """Host's completion of a device DMA read (carries the data)."""

    WIRE_SIZE = None  # payload-dependent

    data: Any = None
    length: int = 0
    req_id: int = 0

    def wire_size(self) -> int:
        return 40 + self.length


@dataclass
class InterruptMsg(Msg):
    """Device raises an interrupt (MSI-X style, by vector)."""

    vector: int = 0


@dataclass
class MemReadMsg(Msg):
    """Packetized memory read request (gem5 port interface)."""

    addr: int = 0
    length: int = 64
    req_id: int = 0


@dataclass
class MemWriteMsg(Msg):
    """Packetized memory write request (gem5 port interface)."""

    addr: int = 0
    length: int = 64
    req_id: int = 0
    data: Any = None


@dataclass
class MemRespMsg(Msg):
    """Memory response, matched to the request by ``req_id``."""

    req_id: int = 0
    data: Any = None
    is_write: bool = False


@dataclass
class MemInvalidateMsg(Msg):
    """Coherence invalidation pushed to a core that cached the line."""

    addr: int = 0


@dataclass
class TrunkMsg(Msg):
    """Wrapper multiplexing sub-channel traffic over one synchronized channel.

    ``subchannel`` identifies the logical link; ``inner`` is the payload
    message (its own stamp field is ignored — the trunk stamp governs).
    """

    WIRE_SIZE = None  # payload-dependent

    subchannel: int = 0
    inner: Optional[Msg] = None

    def wire_size(self) -> int:
        return 16 + (self.inner.wire_size() if self.inner is not None else 0)


@dataclass
class RawMsg(Msg):
    """Arbitrary payload message for tests and generic tooling."""

    payload: Any = None
