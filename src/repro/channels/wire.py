"""Wire codecs for the multiprocess channel transport.

Every fixed-layout :class:`~repro.channels.messages.Msg` subclass gets a
``struct``-packed encoder/decoder registered under a one-byte type tag, so
the shared-memory rings never pay ``pickle`` for protocol traffic — the
same fixed-layout-frame property SimBricks gets from its C shared-memory
queues.  Messages with variable payloads (``EthMsg`` packets, DMA data,
``RawMsg``) carry a length-prefixed bytes tail; payload objects that are
not raw bytes are pickled *inside* the tail, and message types without a
registered codec (user-defined subclasses) fall back to pickling the whole
message behind the distinct :data:`TAG_PICKLE` tag.  Both fallbacks are
counted (:func:`stats`) so the observability layer can report how much of
a run's traffic left the fast path.

Frame layout (everything little-endian)::

    [u8 tag][u64 promise][body...]

``promise`` piggybacks the sender's sync horizon on every frame: the
sender guarantees that no *future* frame on this queue will carry a
delivery stamp below ``promise``.  Data frames make explicit ``SyncMsg``
markers unnecessary while traffic flows — the receiver raises its input
horizon to ``max(stamp, promise)`` per frame.  A promise of ``0`` carries
no information beyond the stamp itself.

Registered bodies start with the common ``stamp``/``seq`` prefix followed
by the type-specific fields; see :data:`TAGS` for the tag table.  Encoding
failures from out-of-range field values (negative addresses, huge ints)
transparently fall back to the pickle frame, so the codec never restricts
what a message may carry — it only accelerates the common case.

The codec can be disabled globally (``SPLITSIM_WIRE_PICKLE=1`` or
:func:`set_codec_enabled`), which forces every frame through the pickle
tag; the determinism tests run the multiprocess transport both ways and
pin identical event timelines.
"""

from __future__ import annotations

import os
import pickle
import struct
from struct import Struct
from typing import Any, Callable, Dict, Tuple

from .messages import (DmaCompletionMsg, DmaReadMsg, DmaWriteMsg, EthMsg,
                       InterruptMsg, MemInvalidateMsg, MemReadMsg, MemRespMsg,
                       MemWriteMsg, MmioMsg, MmioRespMsg, Msg, RawMsg,
                       SyncMsg, TrunkMsg)
from ..netsim.packet import Packet

_PROTO = pickle.HIGHEST_PROTOCOL

#: Whole-message pickle fallback tag (distinct from every registered tag).
TAG_PICKLE = 0xFF

#: One-byte tag per registered message class (the wire-format tag table).
TAGS: Dict[type, int] = {
    Msg: 0x01,
    SyncMsg: 0x02,
    EthMsg: 0x03,
    MmioMsg: 0x04,
    MmioRespMsg: 0x05,
    DmaReadMsg: 0x06,
    DmaWriteMsg: 0x07,
    DmaCompletionMsg: 0x08,
    InterruptMsg: 0x09,
    MemReadMsg: 0x0A,
    MemWriteMsg: 0x0B,
    MemRespMsg: 0x0C,
    MemInvalidateMsg: 0x0D,
    TrunkMsg: 0x0E,
    RawMsg: 0x0F,
}

#: Frame header: tag + piggybacked horizon promise.
_HDR = Struct("<BQ")
_HDR_SIZE = _HDR.size
_LEN32 = Struct("<I")

# Common body prefix (stamp, seq, flow, hop) and per-class field layouts.
# ``flow``/``hop`` are the causal-provenance header fields (repro.obs.flows):
# fixed-layout u64/u16 so flow-tagged traffic NEVER leaves the struct fast
# path — tagging a message must not demote it to the pickle frame.
_S_BASE = Struct("<QQQH")
_S_MMIO = Struct("<QQQHQQBI")        # + addr, value, is_write, req_id
_S_MMIO_RESP = Struct("<QQQHQI")     # + value, req_id
_S_ADDR_LEN_REQ = Struct("<QQQHQII") # + addr, length, req_id
_S_DMA_COMP = Struct("<QQQHII")      # + length, req_id
_S_INTR = Struct("<QQQHI")           # + vector
_S_MEM_RESP = Struct("<QQQHIB")      # + req_id, is_write
_S_MEM_INV = Struct("<QQQHQ")        # + addr
_S_TRUNK = Struct("<QQQHIB")         # + subchannel, has_inner
# Packet fast path: src, dst, size_bytes, src_port, dst_port, seq, ack,
# wnd, data_len, ecn bits, residence_ps, arrival_ts, create_ts, hops, uid,
# flow
_S_PACKET = Struct("<QQIHHQQIIBQQQHQQ")

#: Payload-tail kinds.
_TAIL_NONE = b"\x00"
_TAIL_BYTES = b"\x01"
_TAIL_PICKLE = b"\x02"

#: Codec switch, shared with forked children (mutate, don't rebind).
_CODEC = [os.environ.get("SPLITSIM_WIRE_PICKLE", "") not in ("1", "true")]

# Fallback counters (per process; children report them via ProcResult).
_msg_pickles = 0
_payload_pickles = 0


def set_codec_enabled(enabled: bool) -> None:
    """Globally enable/disable the struct codecs (pickle-everything mode)."""
    _CODEC[0] = bool(enabled)


def codec_enabled() -> bool:
    """Whether the struct fast path is active in this process."""
    return _CODEC[0]


def stats() -> Dict[str, Any]:
    """Per-process fallback counters for the observability layer."""
    return {
        "codec_enabled": _CODEC[0],
        "msg_pickle_fallbacks": _msg_pickles,
        "payload_pickles": _payload_pickles,
    }


def reset_stats() -> None:
    """Zero the fallback counters (bench/test isolation)."""
    global _msg_pickles, _payload_pickles
    _msg_pickles = 0
    _payload_pickles = 0


# -- tail / small-string helpers --------------------------------------------

def _pack_tail(parts: list, obj: Any) -> None:
    global _payload_pickles
    if obj is None:
        parts.append(_TAIL_NONE)
    elif type(obj) is bytes:
        parts.append(_TAIL_BYTES)
        parts.append(_LEN32.pack(len(obj)))
        parts.append(obj)
    else:
        _payload_pickles += 1
        blob = pickle.dumps(obj, _PROTO)
        parts.append(_TAIL_PICKLE)
        parts.append(_LEN32.pack(len(blob)))
        parts.append(blob)


def _unpack_tail(buf: bytes, off: int) -> Tuple[Any, int]:
    kind = buf[off]
    off += 1
    if kind == 0:
        return None, off
    (length,) = _LEN32.unpack_from(buf, off)
    off += 4
    blob = buf[off:off + length]
    off += length
    return (blob if kind == 1 else pickle.loads(blob)), off


def _pack_str(s: str) -> bytes:
    raw = s.encode("ascii")
    if len(raw) > 255:
        raise struct.error("string field too long for wire format")
    return bytes((len(raw),)) + raw


def _unpack_str(buf: bytes, off: int) -> Tuple[str, int]:
    length = buf[off]
    off += 1
    return buf[off:off + length].decode("ascii"), off + length


# -- per-class codecs --------------------------------------------------------
# Decoders construct messages positionally (dataclass field order: the
# stamp/seq base prefix, then subclass fields in declaration order).

def _enc_msg(m: Msg, p: int) -> bytes:
    return _HDR.pack(0x01, p) + _S_BASE.pack(m.stamp, m.seq, m.flow, m.hop)


def _dec_msg(buf: bytes, off: int) -> Msg:
    return Msg(*_S_BASE.unpack_from(buf, off))


def _enc_sync(m: SyncMsg, p: int) -> bytes:
    return _HDR.pack(0x02, p) + _S_BASE.pack(m.stamp, m.seq, m.flow, m.hop)


def _dec_sync(buf: bytes, off: int) -> SyncMsg:
    return SyncMsg(*_S_BASE.unpack_from(buf, off))


def _enc_eth(m: EthMsg, p: int) -> bytes:
    parts = [_HDR.pack(0x03, p), _S_BASE.pack(m.stamp, m.seq, m.flow, m.hop)]
    pkt = m.packet
    if pkt is None:
        parts.append(_TAIL_NONE)
    elif type(pkt) is Packet:
        parts.append(_TAIL_BYTES)  # reused as "inline struct packet" marker
        parts.append(_S_PACKET.pack(
            pkt.src, pkt.dst, pkt.size_bytes, pkt.src_port, pkt.dst_port,
            pkt.seq, pkt.ack, pkt.wnd, pkt.data_len,
            pkt.ect | (pkt.ce << 1) | (pkt.ece << 2),
            pkt.residence_ps, pkt.arrival_ts, pkt.create_ts, pkt.hops,
            pkt.uid, pkt.flow))
        parts.append(_pack_str(pkt.proto))
        parts.append(_pack_str(pkt.flags))
        _pack_tail(parts, pkt.payload)
    else:
        global _payload_pickles
        _payload_pickles += 1
        blob = pickle.dumps(pkt, _PROTO)
        parts.append(_TAIL_PICKLE)
        parts.append(_LEN32.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def _dec_eth(buf: bytes, off: int) -> EthMsg:
    stamp, seq, flow, hop = _S_BASE.unpack_from(buf, off)
    off += _S_BASE.size
    kind = buf[off]
    off += 1
    if kind == 0:
        return EthMsg(stamp, seq, flow, hop, None)
    if kind == 2:
        (length,) = _LEN32.unpack_from(buf, off)
        off += 4
        return EthMsg(stamp, seq, flow, hop,
                      pickle.loads(buf[off:off + length]))
    (src, dst, size_bytes, src_port, dst_port, pseq, ack, wnd, data_len,
     ecn, residence_ps, arrival_ts, create_ts, hops,
     uid, pflow) = _S_PACKET.unpack_from(buf, off)
    off += _S_PACKET.size
    proto, off = _unpack_str(buf, off)
    flags, off = _unpack_str(buf, off)
    payload, off = _unpack_tail(buf, off)
    pkt = Packet(src, dst, size_bytes, proto, src_port, dst_port, pseq, ack,
                 flags, wnd, data_len, bool(ecn & 1), bool(ecn & 2),
                 bool(ecn & 4), residence_ps, arrival_ts, payload, create_ts,
                 hops, uid, pflow)
    return EthMsg(stamp, seq, flow, hop, pkt)


def _enc_mmio(m: MmioMsg, p: int) -> bytes:
    return _HDR.pack(0x04, p) + _S_MMIO.pack(
        m.stamp, m.seq, m.flow, m.hop, m.addr, m.value,
        1 if m.is_write else 0, m.req_id)


def _dec_mmio(buf: bytes, off: int) -> MmioMsg:
    (stamp, seq, flow, hop, addr, value, is_write,
     req_id) = _S_MMIO.unpack_from(buf, off)
    return MmioMsg(stamp, seq, flow, hop, addr, value, bool(is_write), req_id)


def _enc_mmio_resp(m: MmioRespMsg, p: int) -> bytes:
    return _HDR.pack(0x05, p) + _S_MMIO_RESP.pack(
        m.stamp, m.seq, m.flow, m.hop, m.value, m.req_id)


def _dec_mmio_resp(buf: bytes, off: int) -> MmioRespMsg:
    return MmioRespMsg(*_S_MMIO_RESP.unpack_from(buf, off))


def _enc_dma_read(m: DmaReadMsg, p: int) -> bytes:
    return _HDR.pack(0x06, p) + _S_ADDR_LEN_REQ.pack(
        m.stamp, m.seq, m.flow, m.hop, m.addr, m.length, m.req_id)


def _dec_dma_read(buf: bytes, off: int) -> DmaReadMsg:
    return DmaReadMsg(*_S_ADDR_LEN_REQ.unpack_from(buf, off))


def _enc_dma_write(m: DmaWriteMsg, p: int) -> bytes:
    parts = [_HDR.pack(0x07, p),
             _S_ADDR_LEN_REQ.pack(m.stamp, m.seq, m.flow, m.hop, m.addr, m.length, m.req_id)]
    _pack_tail(parts, m.data)
    return b"".join(parts)


def _dec_dma_write(buf: bytes, off: int) -> DmaWriteMsg:
    (stamp, seq, flow, hop, addr, length,
     req_id) = _S_ADDR_LEN_REQ.unpack_from(buf, off)
    data, _ = _unpack_tail(buf, off + _S_ADDR_LEN_REQ.size)
    return DmaWriteMsg(stamp, seq, flow, hop, addr, data, length, req_id)


def _enc_dma_comp(m: DmaCompletionMsg, p: int) -> bytes:
    parts = [_HDR.pack(0x08, p),
             _S_DMA_COMP.pack(m.stamp, m.seq, m.flow, m.hop,
                              m.length, m.req_id)]
    _pack_tail(parts, m.data)
    return b"".join(parts)


def _dec_dma_comp(buf: bytes, off: int) -> DmaCompletionMsg:
    stamp, seq, flow, hop, length, req_id = _S_DMA_COMP.unpack_from(buf, off)
    data, _ = _unpack_tail(buf, off + _S_DMA_COMP.size)
    return DmaCompletionMsg(stamp, seq, flow, hop, data, length, req_id)


def _enc_intr(m: InterruptMsg, p: int) -> bytes:
    return _HDR.pack(0x09, p) + _S_INTR.pack(
        m.stamp, m.seq, m.flow, m.hop, m.vector)


def _dec_intr(buf: bytes, off: int) -> InterruptMsg:
    return InterruptMsg(*_S_INTR.unpack_from(buf, off))


def _enc_mem_read(m: MemReadMsg, p: int) -> bytes:
    return _HDR.pack(0x0A, p) + _S_ADDR_LEN_REQ.pack(
        m.stamp, m.seq, m.flow, m.hop, m.addr, m.length, m.req_id)


def _dec_mem_read(buf: bytes, off: int) -> MemReadMsg:
    return MemReadMsg(*_S_ADDR_LEN_REQ.unpack_from(buf, off))


def _enc_mem_write(m: MemWriteMsg, p: int) -> bytes:
    parts = [_HDR.pack(0x0B, p),
             _S_ADDR_LEN_REQ.pack(m.stamp, m.seq, m.flow, m.hop, m.addr, m.length, m.req_id)]
    _pack_tail(parts, m.data)
    return b"".join(parts)


def _dec_mem_write(buf: bytes, off: int) -> MemWriteMsg:
    (stamp, seq, flow, hop, addr, length,
     req_id) = _S_ADDR_LEN_REQ.unpack_from(buf, off)
    data, _ = _unpack_tail(buf, off + _S_ADDR_LEN_REQ.size)
    return MemWriteMsg(stamp, seq, flow, hop, addr, length, req_id, data)


def _enc_mem_resp(m: MemRespMsg, p: int) -> bytes:
    parts = [_HDR.pack(0x0C, p),
             _S_MEM_RESP.pack(m.stamp, m.seq, m.flow, m.hop, m.req_id,
                              1 if m.is_write else 0)]
    _pack_tail(parts, m.data)
    return b"".join(parts)


def _dec_mem_resp(buf: bytes, off: int) -> MemRespMsg:
    stamp, seq, flow, hop, req_id, is_write = _S_MEM_RESP.unpack_from(buf, off)
    data, _ = _unpack_tail(buf, off + _S_MEM_RESP.size)
    return MemRespMsg(stamp, seq, flow, hop, req_id, data, bool(is_write))


def _enc_mem_inv(m: MemInvalidateMsg, p: int) -> bytes:
    return _HDR.pack(0x0D, p) + _S_MEM_INV.pack(
        m.stamp, m.seq, m.flow, m.hop, m.addr)


def _dec_mem_inv(buf: bytes, off: int) -> MemInvalidateMsg:
    return MemInvalidateMsg(*_S_MEM_INV.unpack_from(buf, off))


def _enc_trunk(m: TrunkMsg, p: int) -> bytes:
    inner = m.inner
    head = _HDR.pack(0x0E, p) + _S_TRUNK.pack(
        m.stamp, m.seq, m.flow, m.hop, m.subchannel,
        0 if inner is None else 1)
    if inner is None:
        return head
    return head + encode(inner, 0)


def _dec_trunk(buf: bytes, off: int) -> TrunkMsg:
    stamp, seq, flow, hop, sub, has_inner = _S_TRUNK.unpack_from(buf, off)
    inner = None
    if has_inner:
        inner, _promise = decode(buf[off + _S_TRUNK.size:])
    return TrunkMsg(stamp, seq, flow, hop, sub, inner)


def _enc_raw(m: RawMsg, p: int) -> bytes:
    parts = [_HDR.pack(0x0F, p), _S_BASE.pack(m.stamp, m.seq, m.flow, m.hop)]
    _pack_tail(parts, m.payload)
    return b"".join(parts)


def _dec_raw(buf: bytes, off: int) -> RawMsg:
    stamp, seq, flow, hop = _S_BASE.unpack_from(buf, off)
    payload, _ = _unpack_tail(buf, off + _S_BASE.size)
    return RawMsg(stamp, seq, flow, hop, payload)


_ENCODERS: Dict[type, Callable[[Any, int], bytes]] = {
    Msg: _enc_msg, SyncMsg: _enc_sync, EthMsg: _enc_eth, MmioMsg: _enc_mmio,
    MmioRespMsg: _enc_mmio_resp, DmaReadMsg: _enc_dma_read,
    DmaWriteMsg: _enc_dma_write, DmaCompletionMsg: _enc_dma_comp,
    InterruptMsg: _enc_intr, MemReadMsg: _enc_mem_read,
    MemWriteMsg: _enc_mem_write, MemRespMsg: _enc_mem_resp,
    MemInvalidateMsg: _enc_mem_inv, TrunkMsg: _enc_trunk, RawMsg: _enc_raw,
}

_DECODERS: Dict[int, Callable[[bytes, int], Msg]] = {
    TAGS[cls]: dec for cls, dec in {
        Msg: _dec_msg, SyncMsg: _dec_sync, EthMsg: _dec_eth,
        MmioMsg: _dec_mmio, MmioRespMsg: _dec_mmio_resp,
        DmaReadMsg: _dec_dma_read, DmaWriteMsg: _dec_dma_write,
        DmaCompletionMsg: _dec_dma_comp, InterruptMsg: _dec_intr,
        MemReadMsg: _dec_mem_read, MemWriteMsg: _dec_mem_write,
        MemRespMsg: _dec_mem_resp, MemInvalidateMsg: _dec_mem_inv,
        TrunkMsg: _dec_trunk, RawMsg: _dec_raw,
    }.items()
}


# -- public API --------------------------------------------------------------

def encode(msg: Msg, promise: int = 0) -> bytes:
    """Serialize one message (plus piggybacked horizon promise) to a frame.

    Unknown message types — and registered types whose field values don't
    fit their fixed layout — fall back to the pickle frame.
    """
    global _msg_pickles
    if _CODEC[0]:
        enc = _ENCODERS.get(type(msg))
        if enc is not None:
            try:
                return enc(msg, promise)
            except (struct.error, OverflowError, UnicodeEncodeError):
                pass
    _msg_pickles += 1
    return _HDR.pack(TAG_PICKLE, promise) + pickle.dumps(msg, _PROTO)


def decode(buf: bytes) -> Tuple[Msg, int]:
    """Deserialize one frame; returns ``(message, promise)``."""
    tag, promise = _HDR.unpack_from(buf, 0)
    if tag == TAG_PICKLE:
        return pickle.loads(buf[_HDR_SIZE:]), promise
    return _DECODERS[tag](buf, _HDR_SIZE), promise
