"""Configuration and orchestration: System -> Instantiation -> Experiment."""

from .instantiate import Experiment, ExperimentResult, Instantiation
from .strategies import STRATEGIES, partition_fat_tree
from .system import HostChoice, System

__all__ = ["System", "HostChoice", "Instantiation", "Experiment",
           "ExperimentResult", "STRATEGIES", "partition_fat_tree"]
