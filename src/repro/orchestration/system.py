"""System configuration: *what* to simulate, separate from *how*.

A :class:`System` describes hosts, switches, links, and per-host
applications with no reference to concrete simulators.  Simulator choices
(protocol-level vs qemu vs gem5 host, NIC model, network partitioning) are
made later by an :class:`~repro.orchestration.instantiate.Instantiation` —
the separation at the heart of the paper's configuration framework
(§3.4): one system configuration, many simulation configurations.

Applications are attached as factories ``factory(host_env) -> App`` where
``host_env`` is either a protocol-level host or a detailed host's OS; the
same factory works for every fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..netsim.topology import TopoSpec

VALID_HOST_SIMS = ("ns3", "qemu", "gem5")
VALID_NICS = ("i40e", "direct")


@dataclass
class HostChoice:
    """Per-host simulator configuration."""

    simulator: str = "ns3"
    nic: str = "i40e"
    freq_ghz: float = 4.0
    clock_drift_ppm: Optional[float] = None
    phc_drift_ppm: Optional[float] = None
    app_factories: List[Callable] = field(default_factory=list)

    @property
    def detailed(self) -> bool:
        """Whether this host runs in its own detailed simulator."""
        return self.simulator != "ns3"


class System:
    """A complete simulated-system description."""

    def __init__(self, seed: int = 0) -> None:
        self.spec = TopoSpec()
        self.seed = seed
        self.hosts: Dict[str, HostChoice] = {}

    # -- topology -------------------------------------------------------------

    def host(self, name: str, simulator: str = "ns3", nic: str = "i40e",
             freq_ghz: float = 4.0, clock_drift_ppm: Optional[float] = None,
             phc_drift_ppm: Optional[float] = None,
             rx_proc_delay_ps: int = 0) -> str:
        """Declare a host; ``simulator`` picks its fidelity."""
        if simulator not in VALID_HOST_SIMS:
            raise ValueError(f"unknown host simulator {simulator!r}")
        if nic not in VALID_NICS:
            raise ValueError(f"unknown NIC model {nic!r}")
        choice = HostChoice(simulator=simulator, nic=nic, freq_ghz=freq_ghz,
                            clock_drift_ppm=clock_drift_ppm,
                            phc_drift_ppm=phc_drift_ppm)
        self.spec.add_host(name, external=choice.detailed,
                           rx_proc_delay_ps=rx_proc_delay_ps)
        self.hosts[name] = choice
        return name

    def set_simulator(self, name: str, simulator: str) -> None:
        """Re-fidelity an existing host (mixed-fidelity sweeps)."""
        if simulator not in VALID_HOST_SIMS:
            raise ValueError(f"unknown host simulator {simulator!r}")
        choice = self.hosts[name]
        choice.simulator = simulator
        self.spec.hosts[name].external = choice.detailed

    def switch(self, name: str, pipeline_factory: Optional[Callable] = None,
               proc_delay_ps: Optional[int] = None) -> str:
        """Declare a switch (optionally with an in-network pipeline)."""
        self.spec.add_switch(name, proc_delay_ps=proc_delay_ps,
                             pipeline_factory=pipeline_factory)
        return name

    def link(self, a: str, b: str, bandwidth_bps: float, latency_ps: int,
             **kwargs) -> None:
        """Join two declared nodes with a link."""
        self.spec.add_link(a, b, bandwidth_bps, latency_ps, **kwargs)

    # -- applications ------------------------------------------------------------

    def app(self, host_name: str, factory: Callable) -> None:
        """Attach an application factory to a host (any fidelity)."""
        if host_name not in self.hosts:
            raise KeyError(f"unknown host {host_name!r}")
        self.hosts[host_name].app_factories.append(factory)

    # -- queries --------------------------------------------------------------------

    def addr_of(self, host_name: str) -> int:
        """Network address of a declared host."""
        return self.spec.addr_of(host_name)

    def detailed_hosts(self) -> List[str]:
        """Names of hosts that get their own detailed simulator."""
        return [n for n, c in self.hosts.items() if c.detailed]

    def protocol_hosts(self) -> List[str]:
        """Names of hosts simulated at protocol level inside the network."""
        return [n for n, c in self.hosts.items() if not c.detailed]

    @classmethod
    def from_topospec(cls, spec: TopoSpec, seed: int = 0) -> "System":
        """Adopt a prebuilt topology (e.g. the builders in netsim.topology).

        Hosts marked external in the spec default to qemu fidelity.
        """
        system = cls(seed=seed)
        system.spec = spec
        for hs in spec.hosts.values():
            choice = HostChoice(simulator="qemu" if hs.external else "ns3")
            # Application factories move to the fidelity-agnostic layer so
            # the instantiation applies them exactly once per build.
            choice.app_factories = list(hs.app_factories)
            hs.app_factories = []
            system.hosts[hs.name] = choice
        return system
