"""Instantiation: turning a system configuration into a runnable simulation.

An :class:`Instantiation` holds the *implementation choices* — which host
simulator backs each detailed host, how the network is partitioned, which
execution mode runs the whole thing — and :meth:`build` assembles all
component simulators and channels into a ready
:class:`~repro.orchestration.instantiate.Experiment`.

The resulting experiment exposes the pieces the evaluation needs: the apps
(for workload metrics), per-component work recordings and model channels
(for the virtual-time performance model), and counters/ends (for the
profiler).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from ..channels.channel import ChannelEnd
from ..hostsim.driver import DirectEthDriver, I40eDriver
from ..hostsim.host import HostSim, gem5_host, qemu_host
from ..kernel.rng import derive_seed
from ..kernel.simtime import NS, US
from ..netsim.fidelity import FidelityConfig
from ..netsim.network import NetworkSim
from ..netsim.partition import (PartitionedBuild, assign_all,
                                assign_hosts_with_switch,
                                instantiate_partitioned)
from ..netsim.ptp_tc import install_transparent_clocks
from ..netsim.topology import NetBuild, TopoSpec, instantiate as build_single
from ..nicsim.i40e import I40eNic
from ..parallel.model import ModelChannel, ParallelExecutionModel
from ..parallel.procrunner import ProcChannel, ProcessRunner, ProcSpec
from ..parallel.simulation import SimStats, Simulation
from ..profiler.instrument import StrictModeSampler
from ..profiler.postprocess import ProfileAnalysis, analyze
from .system import System

DEFAULT_ETH_LATENCY_PS = 500 * NS
DEFAULT_PCI_LATENCY_PS = 250 * NS


@dataclass
class ExperimentResult:
    """Everything a finished run reports."""

    stats: SimStats
    experiment: "Experiment"

    @property
    def sim_time_ps(self) -> int:
        """Simulated duration of the finished run."""
        return self.stats.sim_time_ps


class Experiment:
    """An assembled simulation, ready to run once."""

    def __init__(self, system: System, sim: Simulation,
                 netbuild: Union[NetBuild, PartitionedBuild],
                 hosts: Dict[str, HostSim], nics: Dict[str, I40eNic],
                 model_channels: List[ModelChannel]) -> None:
        self.system = system
        self.sim = sim
        self.netbuild = netbuild
        self.hosts = hosts
        self.nics = nics
        self.model_channels = model_channels
        #: set when the instantiation enabled profiling
        self.sampler = None
        #: sim-domain tracer (set by :meth:`enable_tracing`)
        self.tracer = None
        #: wall-domain tracer carrying orchestration phase spans (ORCH_PID)
        self.phase_tracer = None
        #: :class:`~repro.obs.trace.PhaseClock` over ``phase_tracer``
        self.phases = None
        #: :class:`~repro.obs.flows.FlowRecorder` (set by
        #: :meth:`enable_flow_tracing`)
        self.flow_recorder = None
        #: :class:`~repro.obs.timeline.TimelineRecorder` (set by
        #: :meth:`enable_timeline`)
        self.timeline = None
        #: :class:`~repro.obs.audit.AuditRecorder` (set by
        #: :meth:`enable_audit`)
        self.audit = None

    # -- conveniences ------------------------------------------------------------

    def apps_of(self, host_name: str) -> list:
        """All application instances running on a host (any fidelity)."""
        choice = self.system.hosts[host_name]
        if choice.detailed:
            return self.hosts[host_name].os.apps
        return self.netbuild.host(host_name).apps

    def app(self, host_name: str, index: int = 0):
        """One application instance of a host (default: the first)."""
        return self.apps_of(host_name)[index]

    def host_os(self, host_name: str):
        """The simulated OS of a detailed host."""
        return self.hosts[host_name].os

    def network_components(self) -> List[NetworkSim]:
        """Every network-simulator partition of this experiment."""
        if isinstance(self.netbuild, PartitionedBuild):
            return self.netbuild.all_components()
        return [self.netbuild.net]

    def install_transparent_clocks(self) -> int:
        """Enable PTP transparent clocks on every switch egress queue."""
        return sum(install_transparent_clocks(net)
                   for net in self.network_components())

    def core_count(self) -> int:
        """Processor cores the equivalent parallel deployment would use
        (one per component simulator, as in the paper's accounting)."""
        return len(self.sim.components)

    # -- execution -------------------------------------------------------------------

    def enable_tracing(self, capacity: int = 1 << 16,
                       interval_rounds: int = 64):
        """Attach the observability layer to this experiment.

        Creates a sim-domain :class:`~repro.obs.trace.Tracer` over the
        simulation (kernel drains, channel counter tracks, link busy
        periods, strict-round stalls) plus a wall-domain phase tracer on
        the dedicated orchestrator pid.  Call before :meth:`run`; export
        afterwards with :meth:`save_trace`.  Returns the sim tracer.
        """
        from ..obs.install import install_tracer
        from ..obs.trace import ORCH_PID, PhaseClock, Tracer
        if self.tracer is None:
            self.tracer = Tracer(capacity=capacity, pid=1,
                                 process_name="simulation", clock="sim")
            install_tracer(self.sim, self.tracer, interval_rounds)
        if self.phase_tracer is None:
            self.phase_tracer = Tracer(pid=ORCH_PID,
                                       process_name="orchestration",
                                       clock="wall")
            self.phases = PhaseClock(self.phase_tracer)
        return self.tracer

    def enable_flow_tracing(self, sample_n: int = 1):
        """Record causal per-message flow hops into this experiment's trace.

        Installs a :class:`~repro.obs.flows.FlowRecorder` over the sim
        tracer (enabling tracing first if needed).  ``sample_n`` keeps one
        flow in ``n``; 1 traces everything.  Pair with
        :meth:`disable_flow_tracing` (the recorder is process-global) —
        typically in a ``try/finally`` around :meth:`run`.
        """
        from ..obs.flows import install_flow_recorder
        self.enable_tracing()
        self.flow_recorder = install_flow_recorder(self.tracer,
                                                   sample_n=sample_n)
        return self.flow_recorder

    def disable_flow_tracing(self) -> None:
        """Detach the process-global flow recorder installed above."""
        from ..obs.flows import uninstall_flow_recorder
        uninstall_flow_recorder()
        self.flow_recorder = None

    def save_trace(self, path: str, extra_meta: Optional[dict] = None) -> dict:
        """Write the merged Chrome-trace document; returns the document."""
        if self.tracer is None:
            raise RuntimeError("enable_tracing() before running "
                               "to collect a trace")
        import json
        from ..obs.trace import chrome_doc
        tracers = [self.tracer]
        if self.phase_tracer is not None:
            tr = self.phase_tracer
            tr.instant(tr.tid("phases"), "phase", "teardown", tr.wall_us())
            tracers.append(tr)
        meta = {"mode": self.sim.mode}
        if extra_meta:
            meta.update(extra_meta)
        doc = chrome_doc(tracers, extra_meta=meta)
        with open(path, "w") as fh:
            json.dump(doc, fh, separators=(",", ":"))
        return doc

    def metrics(self, stats: Optional[SimStats] = None):
        """Unified metrics snapshot registry for this experiment."""
        from ..obs.metrics import collect_experiment
        return collect_experiment(self, stats=stats)

    def enable_timeline(self, interval_rounds: int = 64,
                        max_rows: Optional[int] = None):
        """Attach the epoch-resolved metrics timeline to this experiment.

        Samples every component's compute/wait/comm cycles, per-edge
        message and sync counts, and selected registry counters at
        sync-round boundaries (every ``interval_rounds`` rounds).  Strict
        mode only — the sampler reads counters at the epochs the sync
        protocol defines.  Call before :meth:`run`; export afterwards with
        :meth:`save_timeline`.  Feed the file to
        :func:`repro.parallel.advisor.recommend_partition` or
        ``splitsim-inspect timeline``.  Returns the recorder.
        """
        from ..obs.timeline import TimelineRecorder
        if self.sim.mode != "strict":
            raise RuntimeError("the epoch timeline needs strict-sync "
                               "execution (mode='strict', profile=True, "
                               "or timeline=True at instantiation)")
        if self.timeline is None:
            kwargs = {} if max_rows is None else {"max_rows": max_rows}
            self.timeline = TimelineRecorder(
                self.sim.components, interval_rounds=interval_rounds,
                meta={"net_switches": self._net_switches()}, **kwargs)
            self.sim.timeline = self.timeline
        return self.timeline

    def enable_audit(self, window_ps: Optional[int] = None,
                     interval_rounds: int = 64):
        """Attach the per-epoch digest ledger to this experiment.

        Folds every component's event timeline into per-epoch subdigests
        over fixed simulated-time windows (``window_ps`` wide), chained so
        ``splitsim-inspect diff`` can localize the first divergent
        ``(epoch, component)`` between two runs.  The ledger's root digest
        is bit-identical to the determinism guard's timeline fold.  Works
        in both execution modes: strict runs flush closed windows every
        ``interval_rounds`` sync rounds; fast runs flush at run end.  Call
        before :meth:`run`; export with :meth:`save_audit`.
        """
        from ..obs.audit import DEFAULT_WINDOW_PS, AuditRecorder
        if self.audit is None:
            self.audit = AuditRecorder(
                self.sim.components,
                window_ps=DEFAULT_WINDOW_PS if window_ps is None
                else window_ps,
                interval_rounds=interval_rounds,
                meta={"system": self.system.spec.name
                      if hasattr(self.system, "spec")
                      and hasattr(self.system.spec, "name") else None})
            self.sim.audit = self.audit
        return self.audit

    def save_audit(self, path: str) -> dict:
        """Write the recorded audit ledger; returns its header."""
        if self.audit is None:
            raise RuntimeError("enable_audit() before running "
                               "to collect an audit ledger")
        return self.audit.save(path, mode=self.sim.mode)

    def _net_switches(self) -> Dict[str, List[str]]:
        """Which topology switches each network component carries (for the
        advisor's switch-level assignment output)."""
        nb = self.netbuild
        if isinstance(nb, PartitionedBuild):
            return {net.name: [sw for sw in nb.spec.switches
                               if nb.assignment.get(sw) == label]
                    for label, net in nb.parts.items()}
        return {nb.net.name: list(nb.spec.switches)}

    def save_timeline(self, path: str) -> dict:
        """Write the recorded epoch timeline; returns its header."""
        if self.timeline is None:
            raise RuntimeError("enable_timeline() before running "
                               "to collect a timeline")
        return self.timeline.save(path)

    def run(self, duration_ps: int) -> ExperimentResult:
        """Run the assembled simulation to ``duration_ps``."""
        if self.phases is not None:
            with self.phases("run"):
                stats = self.sim.run(duration_ps)
        else:
            stats = self.sim.run(duration_ps)
        return ExperimentResult(stats=stats, experiment=self)

    def profile_analysis(self, drop_head: int = 1,
                         drop_tail: int = 0) -> ProfileAnalysis:
        """Post-process the profiler samples collected during the run."""
        if self.sampler is None:
            raise RuntimeError("build the instantiation with profile=True")
        self.sampler.sample()  # final snapshot
        return analyze(self.sampler.log, drop_head=drop_head,
                       drop_tail=drop_tail)

    def run_mp(self, duration_ps: int, timeout_s: float = 300.0, *,
               progress: bool = False, report_path: Optional[str] = None,
               trace_dir: Optional[str] = None,
               hb_interval_s: float = 0.25,
               flow_sample: Optional[int] = None,
               digest: bool = False,
               control_dir: Optional[str] = None,
               stall_intervals: int = 4,
               stale_after_s: Optional[float] = None,
               timeline_path: Optional[str] = None,
               audit_path: Optional[str] = None,
               audit_window_ps: Optional[int] = None):
        """Run this experiment with one OS process per component simulator.

        This is the paper's actual deployment (shared-memory channels,
        busy-poll synchronization).  Components are inherited via fork, so
        the experiment must not have been run in-process already.  Returns
        the per-process results of :class:`~repro.parallel.procrunner`.
        ``progress``/``report_path``/``trace_dir`` switch on live heartbeat
        telemetry, the versioned ``run_report.json``, and per-child traces
        merged into ``trace_dir/trace.json``.  ``control_dir`` serves the
        live control plane (``splitsim-inspect attach``) from that run
        directory; ``stall_intervals``/``stale_after_s`` tune its watchdog.
        ``timeline_path`` writes the epoch-resolved metrics timeline there
        (children piggyback epoch deltas on heartbeats).  ``audit_path``
        writes the per-epoch digest ledger there (``audit_window_ps``
        sets the epoch width; see :mod:`repro.obs.audit`).
        """
        specs = [ProcSpec(c.name, component=c) for c in self.sim.components]
        channels = [
            ProcChannel(ea.owner.name, ea.name, eb.owner.name, eb.name)
            for ea, eb in self.sim.channels
        ]
        runner = ProcessRunner(specs, channels)
        return runner.run(duration_ps, timeout_s=timeout_s,
                          progress=progress, report_path=report_path,
                          trace_dir=trace_dir, hb_interval_s=hb_interval_s,
                          flow_sample=flow_sample, digest=digest,
                          control_dir=control_dir,
                          stall_intervals=stall_intervals,
                          stale_after_s=stale_after_s,
                          timeline_path=timeline_path,
                          audit_path=audit_path,
                          audit_window_ps=audit_window_ps)

    def execution_model(self, sim_time_ps: int) -> ParallelExecutionModel:
        """Virtual-time model over this experiment's recorded workload."""
        if self.sim.recorder is None:
            raise RuntimeError("build the instantiation with work_window_ps")
        return ParallelExecutionModel(
            self.sim.recorder, sim_time_ps, self.model_channels,
            components=[c.name for c in self.sim.components],
            baselines={c.name: getattr(c, "baseline_cycles_per_ps", 0.0)
                       for c in self.sim.components})


@dataclass
class Instantiation:
    """Implementation choices for simulating a :class:`System`."""

    system: System
    mode: str = "fast"
    network_flavor: str = "ns3"
    #: None = single network process; or a mapping switch->partition label;
    #: or a callable (TopoSpec) -> switch-level assignment.
    network_partition: Optional[Union[Dict[str, str], Callable]] = None
    use_trunk: bool = True
    work_window_ps: Optional[int] = None
    eth_latency_ps: int = DEFAULT_ETH_LATENCY_PS
    pci_latency_ps: int = DEFAULT_PCI_LATENCY_PS
    transparent_clocks: bool = False
    #: Enable the SplitSim profiler: forces strict-sync execution and
    #: samples every adapter's counters periodically (the paper's
    #: "add the flag to enable profiling").
    profile: bool = False
    profile_interval_rounds: int = 200
    #: Enable the observability layer: a sim-domain tracer over the whole
    #: simulation plus wall-domain build/run/teardown phase spans.
    trace: bool = False
    trace_capacity: int = 1 << 16
    trace_interval_rounds: int = 64
    #: Causal flow tracing: keep 1-in-N flows (1 = every flow, ``None`` =
    #: off).  Implies ``trace``.  See ``repro.obs.flows``.
    flow_sample: Optional[int] = None
    #: Network fidelity tiers (batched packet drain, fluid flow-level
    #: model); ``None`` = pure packet-level, exactly as before.  See
    #: :class:`~repro.netsim.fidelity.FidelityConfig`.
    fidelity: Optional["FidelityConfig"] = None
    #: Record the epoch-resolved metrics timeline (forces strict-sync
    #: execution, like ``profile``).  Export with
    #: ``experiment.save_timeline(path)`` after the run.
    timeline: bool = False
    timeline_interval_rounds: int = 64
    #: Record the per-epoch digest ledger (see :mod:`repro.obs.audit`).
    #: Works in any execution mode — epochs are fixed simulated-time
    #: windows, so ledgers from fast, strict, and multiprocess runs are
    #: directly comparable.  Export with ``experiment.save_audit(path)``.
    audit: bool = False
    #: Audit epoch width in simulated picoseconds (``None`` = the module
    #: default, :data:`repro.obs.audit.DEFAULT_WINDOW_PS`).
    audit_window_ps: Optional[int] = None
    #: Apply a saved advisor recommendation (``partition.json`` from
    #: ``splitsim-inspect recommend``) as the network partition.
    #: Mutually exclusive with ``network_partition``.
    partition_file: Optional[str] = None

    def build(self) -> Experiment:
        """Assemble all component simulators and channels per the choices."""
        phase_tracer = None
        build_start_us = 0.0
        if self.flow_sample is not None:
            self.trace = True
        if self.trace:
            from ..obs.trace import ORCH_PID, Tracer
            phase_tracer = Tracer(pid=ORCH_PID,
                                  process_name="orchestration",
                                  clock="wall")
            build_start_us = phase_tracer.wall_us()
        system = self.system
        spec = system.spec
        mode = "strict" if self.profile or self.timeline else self.mode
        sim = Simulation(mode=mode, work_window_ps=self.work_window_ps)
        model_channels: List[ModelChannel] = []

        network_partition = self.network_partition
        if self.partition_file is not None:
            if network_partition is not None:
                raise ValueError("partition_file and network_partition are "
                                 "mutually exclusive")
            from .strategies import partition_from_file
            network_partition = partition_from_file(self.partition_file)

        # -- network ------------------------------------------------------
        if network_partition is None:
            nb = build_single(spec, name="net", flavor=self.network_flavor,
                              seed=system.seed)
            sim.add(nb.net)
            attachments = nb.attachments
        else:
            part = network_partition
            switch_part = part(spec) if callable(part) else part
            assignment = assign_hosts_with_switch(spec, switch_part)
            nb = instantiate_partitioned(
                spec, assignment, flavor=self.network_flavor,
                seed=system.seed, use_trunk=self.use_trunk)
            for comp in nb.all_components():
                sim.add(comp)
            for end_a, end_b in nb.channels:
                sim.connect(end_a, end_b)
            model_channels.extend(nb.model_channels)
            attachments = nb.attachments

        # -- fidelity tiers -------------------------------------------------
        if self.fidelity is not None:
            if isinstance(nb, PartitionedBuild):
                for comp in nb.all_components():
                    self.fidelity.apply(comp)
            else:
                self.fidelity.apply(nb.net)

        # -- protocol-level apps -------------------------------------------
        for name, choice in system.hosts.items():
            if choice.detailed:
                continue
            host = nb.host(name)
            for factory in choice.app_factories:
                host.add_app(factory(host))

        # -- detailed hosts + NICs -----------------------------------------
        hosts: Dict[str, HostSim] = {}
        nics: Dict[str, I40eNic] = {}
        for name, choice in system.hosts.items():
            if not choice.detailed:
                continue
            att = attachments.get(name)
            if att is None:
                raise RuntimeError(f"detailed host {name} has no attachment "
                                   "(is it linked to a switch?)")
            link_bw = att.ext.direction.bandwidth_bps
            seed = derive_seed(system.seed, f"host.{name}") & 0x7FFFFFFF
            addr = spec.addr_of(name)
            net = att.net

            if choice.nic == "direct":
                driver = DirectEthDriver(eth_latency_ps=self.eth_latency_ps)
                host = self._make_host(name, addr, choice, driver, seed)
                sim.add(host)
                net_end = ChannelEnd(f"net:{name}", latency=self.eth_latency_ps)
                net.bind_external_to_end(name, net_end)
                sim.connect(driver.eth, net_end)
                model_channels.append(
                    ModelChannel(host.name, net.name, self.eth_latency_ps))
            else:
                driver = I40eDriver(pci_latency_ps=self.pci_latency_ps)
                host = self._make_host(name, addr, choice, driver, seed)
                nic = I40eNic(f"{name}.nic", line_rate_bps=link_bw,
                              eth_latency_ps=self.eth_latency_ps,
                              pci_latency_ps=self.pci_latency_ps,
                              phc_drift_ppm=choice.phc_drift_ppm, seed=seed)
                sim.add(host)
                sim.add(nic)
                sim.connect(driver.pci, nic.pci)
                net_end = ChannelEnd(f"net:{name}", latency=self.eth_latency_ps)
                net.bind_external_to_end(name, net_end)
                sim.connect(nic.eth, net_end)
                nics[name] = nic
                model_channels.append(
                    ModelChannel(host.name, nic.name, self.pci_latency_ps))
                model_channels.append(
                    ModelChannel(nic.name, net.name, self.eth_latency_ps))
            for factory in choice.app_factories:
                host.add_app(factory(host.os))
            hosts[name] = host

        exp = Experiment(system, sim, nb, hosts, nics, model_channels)
        if phase_tracer is not None:
            from ..obs.trace import PhaseClock
            exp.phase_tracer = phase_tracer
            exp.phases = PhaseClock(phase_tracer)
            exp.enable_tracing(self.trace_capacity,
                               self.trace_interval_rounds)
            if self.flow_sample is not None:
                exp.enable_flow_tracing(self.flow_sample)
            phase_tracer.span(phase_tracer.tid("phases"), "phase", "build",
                              build_start_us,
                              phase_tracer.wall_us() - build_start_us,
                              {"components": len(sim.components),
                               "channels": len(sim.channels)})
        if self.profile:
            sampler = StrictModeSampler(sim.components,
                                        interval=self.profile_interval_rounds)
            sim.round_hook = sampler.tick
            exp.sampler = sampler
        if self.timeline:
            exp.enable_timeline(self.timeline_interval_rounds)
        if self.audit:
            exp.enable_audit(self.audit_window_ps)
        if self.transparent_clocks:
            exp.install_transparent_clocks()
        return exp

    def _make_host(self, name: str, addr: int, choice, driver,
                   seed: int) -> HostSim:
        maker = gem5_host if choice.simulator == "gem5" else qemu_host
        return maker(f"{name}.host", addr, seed=seed,
                     freq_ghz=choice.freq_ghz,
                     clock_drift_ppm=choice.clock_drift_ppm, driver=driver)
