"""Network partition strategies (paper Fig. 9).

These operate on the datacenter topology built by
:func:`repro.netsim.topology.datacenter`, whose switch naming encodes the
hierarchy (``core``, ``agg<A>``, ``a<A>r<R>tor``):

========  ==================================================================
``s``     whole network as one process
``ac``    one process per aggregation block (its racks included), plus one
          for the core switch
``cr<N>`` aggregate N racks into a process, plus one process for all
          aggregation switches and the core
``rs``    one process per rack; one process per aggregation switch; one for
          the core
========  ==================================================================

Each strategy returns a switch-level assignment; hosts follow their ToR via
:func:`repro.netsim.partition.assign_hosts_with_switch`.  Strategies also
work on scaled-down datacenter topologies (fewer aggs/racks/hosts).
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Optional

from ..netsim.topology import TopoSpec

_TOR = re.compile(r"^a(\d+)r(\d+)tor$")
_AGG = re.compile(r"^agg(\d+)$")


def _classify(spec: TopoSpec):
    tors: Dict[str, tuple] = {}
    aggs: Dict[str, int] = {}
    core = None
    for name in spec.switches:
        m = _TOR.match(name)
        if m:
            tors[name] = (int(m.group(1)), int(m.group(2)))
            continue
        m = _AGG.match(name)
        if m:
            aggs[name] = int(m.group(1))
            continue
        if name == "core":
            core = name
    if core is None:
        raise ValueError("strategy requires the datacenter() topology naming")
    return core, aggs, tors


def strategy_single(spec: TopoSpec) -> Dict[str, str]:
    """``s``: everything in one network process."""
    return {name: "all" for name in spec.switches}


def strategy_ac(spec: TopoSpec) -> Dict[str, str]:
    """``ac``: one process per aggregation block, one for the core."""
    core, aggs, tors = _classify(spec)
    assignment = {core: "core"}
    for name, a in aggs.items():
        assignment[name] = f"agg{a}"
    for name, (a, _r) in tors.items():
        assignment[name] = f"agg{a}"
    return assignment


def strategy_cr(n: int) -> Callable[[TopoSpec], Dict[str, str]]:
    """``cr<N>``: N racks per process; aggs+core together in one process."""
    if n <= 0:
        raise ValueError("n must be positive")

    def strategy(spec: TopoSpec) -> Dict[str, str]:
        """crN assignment for a concrete topology."""
        core, aggs, tors = _classify(spec)
        assignment = {core: "backbone"}
        for name in aggs:
            assignment[name] = "backbone"
        ordered = sorted(tors, key=lambda t: tors[t])
        for i, name in enumerate(ordered):
            assignment[name] = f"racks{i // n}"
        return assignment

    strategy.__name__ = f"strategy_cr{n}"
    return strategy


def strategy_rs(spec: TopoSpec) -> Dict[str, str]:
    """``rs``: per-rack processes, per-agg processes, core alone."""
    core, aggs, tors = _classify(spec)
    assignment = {core: "core"}
    for name, a in aggs.items():
        assignment[name] = f"agg{a}"
    for name, (a, r) in tors.items():
        assignment[name] = f"rack{a}_{r}"
    return assignment


#: The strategy table of Fig. 9 (crN instantiated for common N).
STRATEGIES: Dict[str, Callable[[TopoSpec], Dict[str, str]]] = {
    "s": strategy_single,
    "ac": strategy_ac,
    "cr1": strategy_cr(1),
    "cr2": strategy_cr(2),
    "cr3": strategy_cr(3),
    "cr6": strategy_cr(6),
    "rs": strategy_rs,
}


def partition_from_file(path: str) -> Dict[str, str]:
    """Switch-level assignment from a saved advisor ``partition.json``.

    The advisor (:mod:`repro.parallel.advisor`) records a
    ``switch_assignment`` alongside its component-level plan whenever the
    source timeline carried the switch index; this loads it in the shape
    ``Instantiation.network_partition`` expects.  Raises
    :class:`ValueError` when the document is malformed or carries no
    switch-level view (e.g. the plan merged network processes with hosts
    only, or the timeline lacked topology metadata).
    """
    from ..parallel.advisor import load_partition
    doc = load_partition(path)
    switch_assignment = doc.get("switch_assignment")
    if not isinstance(switch_assignment, dict) or not switch_assignment:
        raise ValueError(f"{path}: partition document has no "
                         "switch_assignment to apply")
    return dict(switch_assignment)


# -- fidelity presets ---------------------------------------------------------

def backbone_links(spec: TopoSpec) -> Callable[[str], bool]:
    """Predicate selecting switch-to-switch direction labels of ``spec``.

    Backbone (inter-switch) links carry aggregated traffic and therefore
    the longest back-to-back runs — the sweet spot for the batched drain —
    while host edge links keep the plain per-packet path (and with it
    per-packet PTP-style ``on_tx_start`` hooks, which disable batching
    anyway).  Use as ``FidelityConfig(batching=True,
    batch_links=backbone_links(spec))``.
    """
    switches = set(spec.switches)

    def is_backbone(label: str) -> bool:
        a, _, b = label.partition("->")
        return a in switches and b in switches

    return is_backbone


def fidelity_preset(name: str, spec: Optional[TopoSpec] = None):
    """Build a :class:`~repro.netsim.fidelity.FidelityConfig` by name.

    ========================  ==================================================
    ``packet``                pure per-packet simulation (the default tier);
                              returns ``None`` so the instantiation takes the
                              exact no-fidelity code path
    ``batched``               batched link drain on every direction
    ``batched-backbone``      batched drain on inter-switch links only
                              (requires ``spec`` for the switch names)
    ``fluid``                 batched drain everywhere plus the fluid
                              flow-level tier for long-lived DCTCP flows
    ========================  ==================================================
    """
    from ..netsim.fidelity import FidelityConfig

    if name == "packet":
        return None
    if name == "batched":
        return FidelityConfig(batching=True)
    if name == "batched-backbone":
        if spec is None:
            raise ValueError("batched-backbone preset needs the TopoSpec")
        return FidelityConfig(batching=True, batch_links=backbone_links(spec))
    if name == "fluid":
        return FidelityConfig(batching=True, fluid=True)
    raise ValueError(f"unknown fidelity preset {name!r} "
                     "(expected packet/batched/batched-backbone/fluid)")


FIDELITY_PRESETS = ("packet", "batched", "batched-backbone", "fluid")


_FT_AGG = re.compile(r"^p(\d+)agg(\d+)$")
_FT_EDGE = re.compile(r"^p(\d+)edge(\d+)$")
_FT_CORE = re.compile(r"^core(\d+)$")


def partition_fat_tree(spec: TopoSpec, k: int) -> Dict[str, str]:
    """Evenly partition a fat tree into ``k`` network processes (Fig. 8).

    Units of one aggregation+edge switch pair are chunked into ``k`` groups
    (whole pods first), and core switches are distributed round-robin.
    ``k`` must divide the total number of agg/edge pairs (32 for FatTree8,
    so 1, 2, 16 and 32 all work).
    """
    pairs: Dict[tuple, Dict[str, str]] = {}
    cores = []
    for name in spec.switches:
        m = _FT_AGG.match(name)
        if m:
            pairs.setdefault((int(m.group(1)), int(m.group(2))), {})["agg"] = name
            continue
        m = _FT_EDGE.match(name)
        if m:
            pairs.setdefault((int(m.group(1)), int(m.group(2))), {})["edge"] = name
            continue
        if _FT_CORE.match(name):
            cores.append(name)
    if not pairs:
        raise ValueError("partition_fat_tree requires fat_tree() naming")
    ordered = [pairs[key] for key in sorted(pairs)]
    if len(ordered) % k:
        raise ValueError(f"k={k} must divide {len(ordered)} agg/edge pairs")
    chunk = len(ordered) // k
    assignment: Dict[str, str] = {}
    for i, unit in enumerate(ordered):
        part = f"p{i // chunk}"
        for name in unit.values():
            assignment[name] = part
    for i, core in enumerate(sorted(cores)):
        assignment[core] = f"p{i % k}"
    return assignment
