"""Behavioral NIC models (Intel X710 / i40e)."""

from .i40e import I40eNic

__all__ = ["I40eNic"]
