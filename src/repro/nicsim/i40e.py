"""Behavioral model of an Intel X710/i40e NIC (the SimBricks ``i40e_bm``).

One NIC is one SplitSim component with two channel ends:

* ``pci`` — to its host (MMIO doorbells in, DMA reads/writes and MSI-X out);
* ``eth`` — to the network (frames in/out).

The model captures what the case studies need: descriptor-ring DMA latency
on both paths, store-and-forward serialization at line rate on transmit,
a PTP hardware clock (PHC) with its own drift, and hardware rx/tx
timestamping of PTP event packets (consumed by ``ptp4l``).
"""

from __future__ import annotations

from itertools import count
from typing import Optional

from ..channels.channel import ChannelEnd
from ..channels.messages import (DmaCompletionMsg, DmaReadMsg, DmaWriteMsg,
                                 EthMsg, InterruptMsg, MmioMsg, MmioRespMsg,
                                 Msg)
from ..hostsim.clock import DriftingClock
from ..hostsim.driver import (REG_PHC_FREQ_ADJ, REG_PHC_STEP, REG_PHC_TIME,
                              REG_TX_DOORBELL, RxEntry, TxDone)
from ..kernel.component import Component
from ..kernel.rng import make_rng
from ..kernel.simtime import NS, bits_time
from ..netsim.packet import Packet
from ..parallel.costmodel import (NIC_BASELINE_CYCLES_PER_PS,
                                  NIC_EVENT_CYCLES)

#: Internal NIC datapath latencies (descriptor processing, buffering).
TX_PROC_PS = 600 * NS
RX_PROC_PS = 500 * NS


def is_ptp_event(pkt: Packet) -> bool:
    """PTP event packets get hardware timestamps (Sync, Delay_Req)."""
    return bool(getattr(pkt.payload, "ptp_event", False))


class I40eNic(Component):
    """Behavioral i40e NIC component."""

    cycles_per_event = NIC_EVENT_CYCLES
    baseline_cycles_per_ps = NIC_BASELINE_CYCLES_PER_PS

    def __init__(self, name: str, line_rate_bps: float = 10e9,
                 eth_latency_ps: int = 500 * NS,
                 pci_latency_ps: int = 250 * NS,
                 phc_drift_ppm: Optional[float] = None,
                 seed: int = 0) -> None:
        super().__init__(name)
        self.line_rate_bps = line_rate_bps
        rng = make_rng(seed, f"{name}.phc")
        drift = (phc_drift_ppm if phc_drift_ppm is not None
                 else rng.uniform(-5.0, 5.0))
        #: PTP hardware clock: much more stable than host clocks.
        self.phc = DriftingClock(drift_ppm=drift)

        self.pci = ChannelEnd(f"{name}.pci", latency=pci_latency_ps)
        self.eth = ChannelEnd(f"{name}.eth", latency=eth_latency_ps)
        self.attach_end(self.pci, self._on_pci)
        self.attach_end(self.eth, self._on_eth)

        self._dma_req_ids = count()
        self._dma_pending: dict[int, int] = {}  # dma req id -> tx slot
        #: flow id riding each in-flight descriptor fetch (provenance only)
        self._dma_flow: dict[int, int] = {}
        self._tx_busy_until = 0
        self.tx_packets = 0
        self.rx_packets = 0

    # -- transmit path: doorbell -> DMA fetch -> serialize -> writeback -------

    def _on_pci(self, msg: Msg) -> None:
        if isinstance(msg, MmioMsg):
            if msg.addr == REG_TX_DOORBELL and msg.is_write:
                req_id = next(self._dma_req_ids)
                self._dma_pending[req_id] = msg.value
                if msg.flow:
                    self._dma_flow[req_id] = msg.flow
                self.call_after(TX_PROC_PS, self._fetch_descriptor, req_id)
            elif msg.addr == REG_PHC_TIME and not msg.is_write:
                self.pci.send(MmioRespMsg(value=self.phc.read(self.now),
                                          req_id=msg.req_id), self.now)
            elif msg.addr == REG_PHC_STEP and msg.is_write:
                self.phc.step(self.now, msg.value)
            elif msg.addr == REG_PHC_FREQ_ADJ and msg.is_write:
                self.phc.adj_freq_ppm(self.now, msg.value / 1000.0)
        elif isinstance(msg, DmaCompletionMsg):
            slot = self._dma_pending.pop(msg.req_id, None)
            self._dma_flow.pop(msg.req_id, None)
            if slot is None or msg.data is None:
                return
            self._transmit(slot, msg.data)

    def _fetch_descriptor(self, req_id: int) -> None:
        slot = self._dma_pending.get(req_id)
        if slot is not None:
            self.pci.send(DmaReadMsg(addr=slot, req_id=req_id,
                                     flow=self._dma_flow.get(req_id, 0)),
                          self.now)

    def _transmit(self, slot: int, pkt: Packet) -> None:
        start = max(self.now, self._tx_busy_until)
        done = start + bits_time(pkt.size_bits, self.line_rate_bps)
        self._tx_busy_until = done
        self.schedule(done, self._wire_out, slot, pkt)

    def _wire_out(self, slot: int, pkt: Packet) -> None:
        self.tx_packets += 1
        hw_ts = self.phc.read(self.now) if is_ptp_event(pkt) else None
        self.eth.send(EthMsg(packet=pkt, flow=pkt.flow), self.now)
        self.pci.send(
            DmaWriteMsg(data=TxDone(slot, pkt.uid, hw_ts), length=16,
                        flow=pkt.flow),
            self.now)

    # -- receive path: wire -> buffer -> DMA write + interrupt ------------------

    def _on_eth(self, msg: Msg) -> None:
        assert isinstance(msg, EthMsg)
        pkt = msg.packet
        self.rx_packets += 1
        hw_ts = self.phc.read(self.now) if is_ptp_event(pkt) else None
        self.call_after(RX_PROC_PS, self._rx_dma, pkt, hw_ts)

    def _rx_dma(self, pkt: Packet, hw_ts: Optional[int]) -> None:
        self.pci.send(DmaWriteMsg(data=RxEntry(pkt, hw_ts),
                                  length=pkt.size_bytes, flow=pkt.flow),
                      self.now)
        self.pci.send(InterruptMsg(vector=0, flow=pkt.flow), self.now)
